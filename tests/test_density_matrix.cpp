// Tests for quantum/density_matrix.hpp: exact mixed-state evolution and
// agreement with both the pure-state simulator and the trajectory sampler,
// including the matrix-free operator-gate path (row register verbatim,
// ConjugatedOperator on the column register) and the noisy sparse-oracle
// QPE convergence the NISQ comparison rests on.
#include "quantum/density_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "common/random.hpp"
#include "core/betti_estimator.hpp"
#include "linalg/matrix_exp.hpp"
#include "quantum/backend.hpp"
#include "quantum/executor.hpp"
#include "quantum/gates.hpp"
#include "quantum/mixed_state.hpp"
#include "scoped_env.hpp"
#include "topology/laplacian.hpp"

namespace qtda {
namespace {

Circuit random_circuit(std::size_t n, int gates, Rng& rng) {
  Circuit c(n);
  for (int i = 0; i < gates; ++i) {
    const std::size_t q = rng.uniform_index(n);
    switch (rng.uniform_index(5)) {
      case 0: c.h(q); break;
      case 1: c.t(q); break;
      case 2: c.rx(q, rng.uniform(-3.0, 3.0)); break;
      case 3: c.rz(q, rng.uniform(-3.0, 3.0)); break;
      default: {
        const std::size_t other = (q + 1 + rng.uniform_index(n - 1)) % n;
        c.cnot(q, other);
        break;
      }
    }
  }
  return c;
}

TEST(DensityMatrix, InitialStateIsPureZero) {
  DensityMatrix rho(2);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-14);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-14);
  EXPECT_NEAR(std::abs(rho.element(0, 0) - Amplitude{1.0, 0.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(rho.element(1, 1)), 0.0, 1e-14);
}

TEST(DensityMatrix, MaximallyMixedProperties) {
  const auto rho = DensityMatrix::maximally_mixed(3);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-14);
  EXPECT_NEAR(rho.purity(), 1.0 / 8.0, 1e-14);
  for (std::uint64_t r = 0; r < 8; ++r)
    EXPECT_NEAR(rho.element(r, r).real(), 1.0 / 8.0, 1e-14);
}

TEST(DensityMatrix, FromStatevectorMatchesOuterProduct) {
  Statevector psi(1);
  psi.apply_single_qubit(gates::H(), 0);
  const auto rho = DensityMatrix::from_statevector(psi);
  for (std::uint64_t r = 0; r < 2; ++r)
    for (std::uint64_t c = 0; c < 2; ++c)
      EXPECT_NEAR(std::abs(rho.element(r, c) - Amplitude{0.5, 0.0}), 0.0,
                  1e-14);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-14);
}

class NoiselessAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NoiselessAgreement, DensityEvolutionMatchesPureState) {
  Rng rng(GetParam() * 23 + 1);
  const std::size_t n = 3;
  const Circuit circuit = random_circuit(n, 25, rng);

  const Statevector psi = run_circuit(circuit);
  const DensityMatrix rho = run_circuit_density(circuit);

  EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
  for (std::uint64_t r = 0; r < psi.dimension(); ++r) {
    for (std::uint64_t c = 0; c < psi.dimension(); ++c) {
      const Amplitude expected =
          psi.amplitude(r) * std::conj(psi.amplitude(c));
      EXPECT_NEAR(std::abs(rho.element(r, c) - expected), 0.0, 1e-10)
          << "r=" << r << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoiselessAgreement,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(DensityMatrix, PurificationMarginalEqualsMaximallyMixed) {
  // Fig. 2 check at the density-matrix level: tracing out the ancillas of
  // the purification leaves exactly I/2^q.
  const std::size_t q = 2;
  Circuit prep(2 * q);
  append_mixed_state_preparation(prep, {0, 1}, {2, 3});
  const auto rho = run_circuit_density(prep);
  const auto marginal = rho.marginal_probabilities({2, 3});
  for (double p : marginal) EXPECT_NEAR(p, 0.25, 1e-12);
}

TEST(DensityMatrix, DepolarizingAtFullStrengthMixesOneQubit) {
  DensityMatrix rho(1);  // pure |0⟩
  rho.apply_depolarizing(0, 1.0);
  // (1−p)ρ + p/3(XρX+YρY+ZρZ) at p=1 gives diag(1/3 + ... ) =
  // diag(1/3, 2/3): X and Y flip, Z keeps.
  EXPECT_NEAR(rho.element(0, 0).real(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(rho.element(1, 1).real(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, RepeatedDepolarizingConvergesToMixed) {
  DensityMatrix rho(1);
  for (int i = 0; i < 60; ++i) rho.apply_depolarizing(0, 0.3);
  EXPECT_NEAR(rho.element(0, 0).real(), 0.5, 1e-6);
  EXPECT_NEAR(rho.purity(), 0.5, 1e-6);
}

TEST(DensityMatrix, NoiseReducesPurityMonotonically) {
  Circuit bell(2);
  bell.h(0);
  bell.cnot(0, 1);
  double previous = 1.0;
  for (double p : {0.01, 0.05, 0.2}) {
    const auto rho = run_circuit_density(bell, NoiseModel{p, p});
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
    EXPECT_LT(rho.purity(), previous);
    previous = rho.purity();
  }
}

TEST(DensityMatrix, TrajectoriesConvergeToExactChannel) {
  // The Monte-Carlo trajectory sampler is an unbiased estimator of the
  // exact channel: averaged outcome distributions agree within sampling
  // error.
  Circuit circuit(2);
  circuit.h(0);
  circuit.cnot(0, 1);
  circuit.rx(1, 0.7);
  const NoiseModel noise{0.05, 0.05};

  const auto exact = run_circuit_density(circuit, noise);
  const auto exact_marginal = exact.marginal_probabilities({0, 1});

  Rng rng(99);
  const std::size_t trajectories = 4000;
  std::vector<double> sampled(4, 0.0);
  for (std::size_t i = 0; i < trajectories; ++i) {
    const auto psi = run_noisy_trajectory(circuit, noise, rng);
    const auto probs = psi.marginal_probabilities({0, 1});
    for (std::size_t m = 0; m < 4; ++m) sampled[m] += probs[m];
  }
  for (std::size_t m = 0; m < 4; ++m) {
    sampled[m] /= static_cast<double>(trajectories);
    EXPECT_NEAR(sampled[m], exact_marginal[m], 0.03) << "outcome " << m;
  }
}

TEST(DensityMatrix, GlobalPhaseCancels) {
  Circuit c(1);
  c.h(0);
  c.add_global_phase(1.234);
  const auto rho = run_circuit_density(c);
  const auto pure = DensityMatrix::from_statevector([] {
    Statevector psi(1);
    psi.apply_single_qubit(gates::H(), 0);
    return psi;
  }());
  for (std::uint64_t r = 0; r < 2; ++r)
    for (std::uint64_t col = 0; col < 2; ++col)
      EXPECT_NEAR(std::abs(rho.element(r, col) - pure.element(r, col)), 0.0,
                  1e-12);
}

TEST(DensityMatrix, SampleCountsAreDeterministicGivenSeed) {
  const auto rho = DensityMatrix::maximally_mixed(2);
  Rng a(5), b(5);
  EXPECT_EQ(rho.sample_counts({0, 1}, 100, a),
            rho.sample_counts({0, 1}, 100, b));
}

TEST(DensityMatrix, SetBasisStateResetsToPureProjector) {
  DensityMatrix rho(2);
  rho.apply_gate([] {
    Gate g;
    g.kind = GateKind::kH;
    g.targets = {0};
    return g;
  }());
  rho.set_basis_state(2);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-14);
  EXPECT_NEAR(std::abs(rho.element(2, 2) - Amplitude{1.0, 0.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(rho.element(0, 0)), 0.0, 1e-14);
  EXPECT_THROW(rho.set_basis_state(4), Error);
}

TEST(DensityMatrix, OperatorGateMatchesDenseGateEvolution) {
  // The same unitary as a dense kUnitary gate and as a matrix-free
  // kOperator gate must evolve ρ identically — the conjugated column-side
  // application is exactly conj(U) without forming it.
  Rng rng(77);
  const std::size_t dim = 4;
  RealMatrix h(dim, dim);
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      h(i, j) = h(j, i) = rng.uniform() * 2.0 - 1.0;
  const ComplexMatrix u = unitary_exp(h);

  for (const std::vector<std::size_t>& controls :
       {std::vector<std::size_t>{}, std::vector<std::size_t>{0}}) {
    Circuit prep(3);
    prep.h(0);
    prep.ry(1, 0.8);
    prep.rx(2, -0.5);
    prep.cnot(0, 2);

    DensityMatrix dense_rho(3), op_rho(3);
    dense_rho.apply_circuit(prep);
    op_rho.apply_circuit(prep);
    // Mix things so the column register carries genuine coherences.
    dense_rho.apply_depolarizing(1, 0.1);
    op_rho.apply_depolarizing(1, 0.1);

    Circuit dense(3);
    dense.unitary(u, {1, 2}, controls);
    Circuit matrix_free(3);
    matrix_free.operator_gate(std::make_shared<DenseOperator>(u), {1, 2},
                              controls);
    dense_rho.apply_circuit(dense);
    op_rho.apply_circuit(matrix_free);

    for (std::uint64_t r = 0; r < 8; ++r)
      for (std::uint64_t c = 0; c < 8; ++c)
        EXPECT_NEAR(std::abs(dense_rho.element(r, c) - op_rho.element(r, c)),
                    0.0, 1e-12)
            << "controls=" << controls.size() << " r=" << r << " c=" << c;
  }
}

TEST(DensityMatrix, SparseOracleQpeMatchesPureStateNoiselessly) {
  // The full matrix-free QPE circuit (purification prep + operator-gate
  // controlled powers + inverse QFT) on ρ = |0⟩⟨0| must reproduce the pure
  // statevector outcome distribution exactly when no noise is applied.
  const Simplex triangle_edges[] = {{0, 1}, {0, 2}, {1, 2}};
  const auto complex = SimplicialComplex::from_simplices(
      {triangle_edges[0], triangle_edges[1], triangle_edges[2]}, true);
  const RealMatrix laplacian = combinatorial_laplacian(complex, 1);

  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.precision_qubits = 3;
  const Circuit circuit = build_qtda_circuit(laplacian, options);

  const Statevector psi = run_circuit(circuit);
  DensityMatrix rho(circuit.num_qubits());
  rho.apply_circuit(circuit);

  EXPECT_NEAR(rho.purity(), 1.0, 1e-9);
  const std::vector<std::size_t> measured{0, 1, 2};
  const auto expected = psi.marginal_probabilities(measured);
  const auto actual = rho.marginal_probabilities(measured);
  for (std::size_t m = 0; m < expected.size(); ++m)
    EXPECT_NEAR(actual[m], expected[m], 1e-9) << "outcome " << m;
}

TEST(DensityMatrix, NoisySparseOracleQpeTrajectoryEnsembleConverges) {
  // The acceptance check of the exact backend: a noisy QPE run with the
  // matrix-free sparse oracle, evolved exactly on ρ, is the limit of
  // run_noisy_trajectory ensembles — the outcome marginal must match the
  // mean over ≥200 trajectories within statistical tolerance.  No dense
  // 2^q×2^q oracle exists anywhere in this circuit (kOperator gates only).
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{0, 1}, Simplex{0, 2}, Simplex{1, 2}}, true);
  const RealMatrix laplacian = combinatorial_laplacian(complex, 1);

  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.precision_qubits = 3;
  const Circuit circuit = build_qtda_circuit(laplacian, options);
  std::size_t operator_gates = 0;
  for (const Gate& gate : circuit.gates())
    operator_gates += gate.kind == GateKind::kOperator ? 1 : 0;
  ASSERT_EQ(operator_gates, options.precision_qubits);

  const NoiseModel noise{0.02, 0.03};
  DensityMatrix rho(circuit.num_qubits());
  rho.apply_circuit_with_noise(circuit, noise);
  const std::vector<std::size_t> measured{0, 1, 2};
  const auto exact = rho.marginal_probabilities(measured);

  Rng rng(2024);
  const std::size_t trajectories = 250;
  std::vector<double> mean(exact.size(), 0.0);
  for (std::size_t i = 0; i < trajectories; ++i) {
    const Statevector psi = run_noisy_trajectory(circuit, noise, rng);
    const auto marginal = psi.marginal_probabilities(measured);
    for (std::size_t m = 0; m < mean.size(); ++m) mean[m] += marginal[m];
  }
  for (std::size_t m = 0; m < mean.size(); ++m) {
    mean[m] /= static_cast<double>(trajectories);
    EXPECT_NEAR(mean[m], exact[m], 0.03) << "outcome " << m;
  }
  // Noise strictly mixes the state, and the exact channel preserves trace.
  EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
  EXPECT_LT(rho.purity(), 1.0);
}

TEST(DensityMatrix, EstimatorRunsNoisySparseOracleOnDensityBackend) {
  // End-to-end plumbing: EstimatorOptions::simulator = kDensityMatrix routes
  // a noisy kCircuitSparse estimate through the exact-channel engine (one
  // ensemble evolution, all shots sampled from it), and weak noise keeps the
  // estimate near the noiseless reference.
  const qtda::testing::ScopedSimulatorEnv restore_after;
  qtda::testing::ScopedSimulatorEnv::clear();
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{0, 1}, Simplex{0, 2}, Simplex{1, 2}}, true);

  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.simulator = SimulatorKind::kDensityMatrix;
  options.precision_qubits = 3;
  options.shots = 20000;
  options.noise = NoiseModel{0.001, 0.001};
  const BettiEstimate noisy = estimate_betti(complex, 1, options);

  EstimatorOptions noiseless = options;
  noiseless.simulator = SimulatorKind::kStatevector;
  noiseless.noise = NoiseModel{};
  const BettiEstimate reference = estimate_betti(complex, 1, noiseless);

  EXPECT_EQ(noisy.system_qubits, reference.system_qubits);
  EXPECT_GT(noisy.circuit_gates, 0u);
  EXPECT_NEAR(noisy.zero_probability, reference.zero_probability, 0.05);
  EXPECT_NEAR(noisy.estimated_betti, reference.estimated_betti, 0.5);

  // Sampled-basis mode exercises the exact-channel path per basis state.
  options.mixed_state = MixedStateMode::kSampledBasis;
  const BettiEstimate sampled = estimate_betti(complex, 1, options);
  EXPECT_NEAR(sampled.zero_probability, reference.zero_probability, 0.05);
}

TEST(DensityMatrix, Validation) {
  EXPECT_THROW(DensityMatrix(0), Error);
  EXPECT_THROW(DensityMatrix(14), Error);
  DensityMatrix rho(2);
  EXPECT_THROW(rho.apply_depolarizing(5, 0.1), Error);
  EXPECT_THROW(rho.apply_depolarizing(0, 1.5), Error);
  EXPECT_THROW(rho.element(4, 0), Error);
}

}  // namespace
}  // namespace qtda
