// Tests for core/pipeline.hpp: point cloud → quantum Betti features.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"

namespace qtda {
namespace {

PointCloud circle_cloud(std::size_t n, double radius = 1.0) {
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle =
        2.0 * M_PI * static_cast<double>(i) / static_cast<double>(n);
    points.push_back({radius * std::cos(angle), radius * std::sin(angle)});
  }
  return PointCloud(points);
}

TEST(Pipeline, CircleFeaturesDetectTheLoop) {
  PipelineOptions options;
  options.epsilon = 0.7;  // connects neighbours on a 10-gon of radius 1
  options.dimensions = {0, 1};
  options.estimator.precision_qubits = 9;
  options.estimator.shots = 100000;
  const auto features = extract_betti_features(circle_cloud(10), options);
  ASSERT_EQ(features.estimated.size(), 2u);
  ASSERT_EQ(features.exact.size(), 2u);
  EXPECT_EQ(features.exact[0], 1u);
  EXPECT_EQ(features.exact[1], 1u);
  EXPECT_NEAR(features.estimated[0], 1.0, 0.35);
  EXPECT_NEAR(features.estimated[1], 1.0, 0.35);
}

TEST(Pipeline, ShardedSimulatorSelectionFlowsThroughAndMatchesDense) {
  // Shard-count plumbing: PipelineOptions::estimator carries the engine and
  // slab count down to the factory, and the sharded run is bit-identical to
  // the dense one feature for feature.
  PipelineOptions options;
  options.epsilon = 0.7;
  options.dimensions = {0, 1};
  options.estimator.backend = EstimatorBackend::kCircuitSparse;
  options.estimator.precision_qubits = 4;
  options.estimator.shots = 5000;
  const auto dense = extract_betti_features(circle_cloud(8), options);
  options.estimator.simulator = SimulatorKind::kShardedStatevector;
  options.estimator.simulator_shards = 3;
  const auto sharded = extract_betti_features(circle_cloud(8), options);
  ASSERT_EQ(sharded.estimated.size(), dense.estimated.size());
  for (std::size_t i = 0; i < dense.estimated.size(); ++i) {
    EXPECT_DOUBLE_EQ(sharded.estimated[i], dense.estimated[i]);
    EXPECT_EQ(sharded.exact[i], dense.exact[i]);
  }
}

TEST(Pipeline, DisconnectedCloudCountsComponents) {
  // Two far-apart pairs.
  PointCloud cloud({{0.0, 0.0}, {0.1, 0.0}, {10.0, 0.0}, {10.1, 0.0}});
  PipelineOptions options;
  options.epsilon = 0.5;
  options.dimensions = {0};
  options.estimator.precision_qubits = 9;
  options.estimator.shots = 100000;
  const auto features = extract_betti_features(cloud, options);
  EXPECT_EQ(features.exact[0], 2u);
  EXPECT_NEAR(features.estimated[0], 2.0, 0.4);
}

TEST(Pipeline, ExactOnlyVariantMatchesFeatureBaseline) {
  const auto cloud = circle_cloud(8);
  PipelineOptions options;
  options.epsilon = 0.8;
  options.dimensions = {0, 1};
  options.estimator.precision_qubits = 4;
  options.estimator.shots = 100;
  const auto features = extract_betti_features(cloud, options);
  const auto exact = extract_exact_betti(cloud, 0.8, {0, 1});
  EXPECT_EQ(features.exact, exact);
}

TEST(Pipeline, EpsilonSweepChangesTopology) {
  const auto cloud = circle_cloud(8);
  // Tiny ε: 8 components, no loop.  Medium ε: 1 component, 1 loop.
  // Huge ε: everything connected, loop filled by triangles.
  const auto tiny = extract_exact_betti(cloud, 0.01, {0, 1});
  EXPECT_EQ(tiny[0], 8u);
  EXPECT_EQ(tiny[1], 0u);
  const auto medium = extract_exact_betti(cloud, 0.8, {0, 1});
  EXPECT_EQ(medium[0], 1u);
  EXPECT_EQ(medium[1], 1u);
  const auto huge = extract_exact_betti(cloud, 3.0, {0, 1});
  EXPECT_EQ(huge[0], 1u);
  EXPECT_EQ(huge[1], 0u);
}

TEST(Pipeline, EmptyDimensionListThrows) {
  PipelineOptions options;
  options.dimensions = {};
  EXPECT_THROW(extract_betti_features(circle_cloud(4), options), Error);
}

TEST(Pipeline, NegativeDimensionThrows) {
  PipelineOptions options;
  options.dimensions = {-1};
  EXPECT_THROW(extract_betti_features(circle_cloud(4), options), Error);
}

}  // namespace
}  // namespace qtda
