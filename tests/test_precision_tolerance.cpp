/// \file test_precision_tolerance.cpp
/// \brief Bounds the complex64 engines' QPE phase-readout error against the
/// complex128 reference, per backend, and checks the factory's precision
/// dispatch and fast-fail env validation.
///
/// The workload is the estimator's core primitive: a t-bit QPE readout of a
/// non-representable eigenphase, so every outcome has nonzero probability
/// (Fejér kernel) and the whole interference cascade — H wall, controlled
/// powers, inverse QFT — runs through the engine under test.  float32
/// amplitudes carry ~1e-7 relative error; after ~100 gates of a 5-qubit QPE
/// the probability-level error stays below 1e-5, which is the headroom the
/// bounds below encode (measured ~2e-6 max across engines on x86-64).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "linalg/dense_matrix.hpp"
#include "quantum/backend.hpp"
#include "quantum/qpe.hpp"
#include "scoped_env.hpp"

namespace qtda {
namespace {

using testing::ScopedSimulatorEnv;

constexpr double kTheta = 0.3;  // not representable in t bits: spread readout

// diag(1, e^{2πiθp}) — |1⟩ is the eigenstate with phase θ·p.
ComplexMatrix phase_unitary(double theta, std::uint64_t power) {
  ComplexMatrix u(2, 2);
  u(0, 0) = 1.0;
  const double phi = 2.0 * kPi * theta * static_cast<double>(power);
  u(1, 1) = Amplitude{std::cos(phi), std::sin(phi)};
  return u;
}

Circuit readout_circuit(const QpeLayout& layout) {
  Circuit circuit(layout.total());
  circuit.x(layout.system_wires()[0]);
  circuit.append_circuit(build_qpe_circuit_dense(
      layout, [&](std::uint64_t power) { return phase_unitary(kTheta, power); }));
  return circuit;
}

std::vector<double> readout(SimulatorKind kind, Precision precision,
                            const QpeLayout& layout, const Circuit& circuit) {
  const std::unique_ptr<SimulatorBackend> backend =
      make_simulator(kind, layout.total(), 3, precision);
  EXPECT_EQ(backend->precision(), precision);
  backend->apply_circuit(circuit);
  return backend->marginal_probabilities(layout.precision_wires());
}

class PrecisionReadout : public ::testing::TestWithParam<SimulatorKind> {};

TEST_P(PrecisionReadout, Complex64ReadoutErrorIsBounded) {
  ScopedSimulatorEnv guard;
  ScopedSimulatorEnv::clear();
  // This test measures float32 *against* float64, so the process-wide
  // precision override must not collapse the two runs onto one engine.
  // The guard restores the incoming value afterwards.
  unsetenv("QTDA_PRECISION");

  const QpeLayout layout{4, 1, 0};
  const Circuit circuit = readout_circuit(layout);
  const std::vector<double> p64 =
      readout(GetParam(), Precision::kFloat64, layout, circuit);
  const std::vector<double> p32 =
      readout(GetParam(), Precision::kFloat32, layout, circuit);
  ASSERT_EQ(p64.size(), p32.size());

  // The double engine reproduces the analytic Fejér-kernel distribution.
  for (std::uint64_t m = 0; m < p64.size(); ++m) {
    EXPECT_NEAR(p64[m], qpe_outcome_probability(kTheta, m, 4), 1e-12)
        << "outcome " << m;
  }

  // The float engine agrees with the reference to well under any QPE
  // decision margin, and both agree on the most likely outcome.
  double max_diff = 0.0;
  std::uint64_t peak64 = 0, peak32 = 0;
  for (std::uint64_t m = 0; m < p64.size(); ++m) {
    max_diff = std::max(max_diff, std::abs(p64[m] - p32[m]));
    if (p64[m] > p64[peak64]) peak64 = m;
    if (p32[m] > p32[peak32]) peak32 = m;
  }
  EXPECT_LT(max_diff, 1e-5);
  EXPECT_EQ(peak64, peak32);

  // Probabilities stay a distribution at float32.
  double total = 0.0;
  for (double p : p32) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, PrecisionReadout,
    ::testing::Values(SimulatorKind::kStatevector,
                      SimulatorKind::kShardedStatevector,
                      SimulatorKind::kDensityMatrix),
    [](const ::testing::TestParamInfo<SimulatorKind>& info) {
      std::string name = simulator_kind_name(info.param);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

TEST(PrecisionDispatch, FactoryHonorsTheRequestedPrecision) {
  ScopedSimulatorEnv guard;
  ScopedSimulatorEnv::clear();
  unsetenv("QTDA_PRECISION");
  for (SimulatorKind kind :
       {SimulatorKind::kStatevector, SimulatorKind::kShardedStatevector,
        SimulatorKind::kDensityMatrix}) {
    EXPECT_EQ(make_simulator(kind, 4)->precision(), Precision::kFloat64);
    EXPECT_EQ(make_simulator(kind, 4, 0, Precision::kFloat32)->precision(),
              Precision::kFloat32);
  }
}

TEST(PrecisionDispatch, EnvOverrideWinsOverTheRequestedPrecision) {
  ScopedSimulatorEnv guard;
  ScopedSimulatorEnv::clear();
  setenv("QTDA_PRECISION", "float32", 1);
  EXPECT_EQ(make_simulator(SimulatorKind::kStatevector, 3)->precision(),
            Precision::kFloat32);
  setenv("QTDA_PRECISION", "float64", 1);
  EXPECT_EQ(make_simulator(SimulatorKind::kStatevector, 3, 0,
                           Precision::kFloat32)
                ->precision(),
            Precision::kFloat64);
}

TEST(PrecisionDispatch, MalformedEnvValuesFailFastNamingTheVariable) {
  ScopedSimulatorEnv guard;
  ScopedSimulatorEnv::clear();
  setenv("QTDA_PRECISION", "fp16", 1);
  try {
    (void)make_simulator(SimulatorKind::kStatevector, 3);
    FAIL() << "expected make_simulator to reject QTDA_PRECISION=fp16";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("QTDA_PRECISION"),
              std::string::npos);
  }
  unsetenv("QTDA_PRECISION");
  setenv("QTDA_SIMD", "turbo", 1);
  try {
    (void)make_simulator(SimulatorKind::kStatevector, 3);
    FAIL() << "expected make_simulator to reject QTDA_SIMD=turbo";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("QTDA_SIMD"), std::string::npos);
  }
}

// A compact conformance pass at float32: the invariants the full backend
// contract asserts for double must survive the narrow engines (the float32
// CI leg additionally routes the *entire* suite through QTDA_PRECISION).
TEST(PrecisionDispatch, Float32EnginesKeepTheBackendInvariants) {
  ScopedSimulatorEnv guard;
  ScopedSimulatorEnv::clear();
  unsetenv("QTDA_PRECISION");
  for (SimulatorKind kind :
       {SimulatorKind::kStatevector, SimulatorKind::kShardedStatevector,
        SimulatorKind::kDensityMatrix}) {
    const std::unique_ptr<SimulatorBackend> backend =
        make_simulator(kind, 3, 2, Precision::kFloat32);
    Circuit circuit(3);
    circuit.h(0);
    circuit.cnot(0, 1);
    circuit.t(1);
    circuit.h(2);
    circuit.h(2);  // H² = I: wire 2 returns to |0⟩
    backend->apply_circuit(circuit);
    const std::vector<double> marginal =
        backend->marginal_probabilities({0, 1, 2});
    double total = 0.0;
    for (double p : marginal) total += p;
    EXPECT_NEAR(total, 1.0, 1e-6) << backend->name();
    // Bell pair on wires 0–1: only |00x⟩ and |11x⟩ populated, wire 2 zero.
    EXPECT_NEAR(marginal[0], 0.5, 1e-6) << backend->name();
    EXPECT_NEAR(marginal[6], 0.5, 1e-6) << backend->name();
    EXPECT_NEAR(marginal[1] + marginal[7], 0.0, 1e-9) << backend->name();
    // Sampling agrees with the marginal on the dominant outcomes.
    Rng rng(11);
    const std::vector<std::uint64_t> counts =
        backend->sample({0, 1, 2}, 4000, rng);
    EXPECT_NEAR(static_cast<double>(counts[0]) / 4000.0, 0.5, 0.05);
    EXPECT_NEAR(static_cast<double>(counts[6]) / 4000.0, 0.5, 0.05);
  }
}

}  // namespace
}  // namespace qtda
