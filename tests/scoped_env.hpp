/// \file scoped_env.hpp
/// \brief Test-only RAII guard for the simulation environment overrides
/// (QTDA_SIMULATOR / QTDA_SHARDS / QTDA_FUSE / QTDA_FUSE_WIDTH).
///
/// Tests that pin factory or compiler behavior must neutralize the
/// overrides the CI legs set process-wide, and tests that exercise an
/// override must not strip it from the rest of a directly-invoked
/// (non-ctest) run — both save the incoming values and restore them on
/// destruction.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace qtda::testing {

class ScopedSimulatorEnv {
 public:
  /// Saves the current override values (restored on destruction).
  ScopedSimulatorEnv() {
    for (const char* name : kNames) {
      const char* value = std::getenv(name);
      saved_.emplace_back(name, value == nullptr
                                    ? std::optional<std::string>{}
                                    : std::optional<std::string>{value});
    }
  }

  ~ScopedSimulatorEnv() {
    for (const auto& [name, value] : saved_) {
      if (value.has_value()) {
        setenv(name, value->c_str(), 1);
      } else {
        unsetenv(name);
      }
    }
  }

  ScopedSimulatorEnv(const ScopedSimulatorEnv&) = delete;
  ScopedSimulatorEnv& operator=(const ScopedSimulatorEnv&) = delete;

  /// Removes both override variables for the remainder of the scope.
  static void clear() {
    for (const char* name : kNames) unsetenv(name);
  }

 private:
  static constexpr const char* kNames[] = {"QTDA_SIMULATOR", "QTDA_SHARDS",
                                           "QTDA_FUSE", "QTDA_FUSE_WIDTH"};
  std::vector<std::pair<const char*, std::optional<std::string>>> saved_;
};

}  // namespace qtda::testing
