/// \file scoped_env.hpp
/// \brief Test-only RAII guard for the simulation environment overrides
/// (QTDA_SIMULATOR / QTDA_SHARDS / QTDA_FUSE / QTDA_FUSE_WIDTH /
/// QTDA_PRECISION / QTDA_SIMD).
///
/// Tests that pin factory or compiler behavior must neutralize the
/// overrides the CI legs set process-wide, and tests that exercise an
/// override must not strip it from the rest of a directly-invoked
/// (non-ctest) run — both save the incoming values and restore them on
/// destruction.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace qtda::testing {

class ScopedSimulatorEnv {
 public:
  /// Saves the current override values (restored on destruction).
  ScopedSimulatorEnv() {
    for (const char* name : kNames) {
      const char* value = std::getenv(name);
      saved_.emplace_back(name, value == nullptr
                                    ? std::optional<std::string>{}
                                    : std::optional<std::string>{value});
    }
  }

  ~ScopedSimulatorEnv() {
    for (const auto& [name, value] : saved_) {
      if (value.has_value()) {
        setenv(name, value->c_str(), 1);
      } else {
        unsetenv(name);
      }
    }
  }

  ScopedSimulatorEnv(const ScopedSimulatorEnv&) = delete;
  ScopedSimulatorEnv& operator=(const ScopedSimulatorEnv&) = delete;

  /// Removes the engine/compiler override variables for the remainder of
  /// the scope.  QTDA_PRECISION and QTDA_SIMD are deliberately left alone:
  /// the float32 and scalar-SIMD CI legs set them process-wide to route the
  /// whole suite through those configurations, and a test that cleared them
  /// would silently fall back to the double/SIMD engines it meant to cover.
  /// They are still saved/restored, so tests that *set* them stay hermetic.
  static void clear() {
    for (const char* name : kClearedNames) unsetenv(name);
  }

 private:
  static constexpr const char* kClearedNames[] = {
      "QTDA_SIMULATOR", "QTDA_SHARDS", "QTDA_FUSE", "QTDA_FUSE_WIDTH"};
  static constexpr const char* kNames[] = {"QTDA_SIMULATOR", "QTDA_SHARDS",
                                           "QTDA_FUSE",      "QTDA_FUSE_WIDTH",
                                           "QTDA_PRECISION", "QTDA_SIMD"};
  std::vector<std::pair<const char*, std::optional<std::string>>> saved_;
};

}  // namespace qtda::testing
