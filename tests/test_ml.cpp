// Tests for ml/: dataset, scaler, logistic regression, metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "ml/dataset.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"

namespace qtda {
namespace {

Dataset separable_blobs(std::size_t per_class, Rng& rng) {
  // Class 0 near (−2, −2), class 1 near (+2, +2): linearly separable.
  Dataset data;
  for (std::size_t i = 0; i < per_class; ++i) {
    data.add({-2.0 + rng.normal(0.0, 0.4), -2.0 + rng.normal(0.0, 0.4)}, 0);
    data.add({2.0 + rng.normal(0.0, 0.4), 2.0 + rng.normal(0.0, 0.4)}, 1);
  }
  return data;
}

TEST(Dataset, AddValidatesShape) {
  Dataset d;
  d.add({1.0, 2.0}, 0);
  EXPECT_THROW(d.add({1.0}, 1), Error);
  EXPECT_THROW(d.add({1.0, 2.0}, 2), Error);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.feature_count(), 2u);
}

TEST(Dataset, PositiveCount) {
  Dataset d;
  d.add({0.0}, 1);
  d.add({0.0}, 0);
  d.add({0.0}, 1);
  EXPECT_EQ(d.positive_count(), 2u);
}

TEST(TrainValSplit, SizesMatchFraction) {
  Rng rng(1);
  Dataset d;
  for (int i = 0; i < 100; ++i) d.add({static_cast<double>(i)}, i % 2);
  const auto split = train_val_split(d, 0.2, rng);
  EXPECT_EQ(split.train.size(), 20u);
  EXPECT_EQ(split.validation.size(), 80u);
}

TEST(TrainValSplit, PartitionIsExact) {
  Rng rng(2);
  Dataset d;
  for (int i = 0; i < 20; ++i) d.add({static_cast<double>(i)}, 0);
  const auto split = train_val_split(d, 0.25, rng);
  std::vector<double> seen;
  for (const auto& row : split.train.features) seen.push_back(row[0]);
  for (const auto& row : split.validation.features) seen.push_back(row[0]);
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(seen[i], i);
}

TEST(TrainValSplit, InvalidFractionThrows) {
  Rng rng(3);
  Dataset d;
  d.add({0.0}, 0);
  d.add({1.0}, 1);
  EXPECT_THROW(train_val_split(d, 0.0, rng), Error);
  EXPECT_THROW(train_val_split(d, 1.0, rng), Error);
}

TEST(StratifiedSplit, PreservesClassRatio) {
  Rng rng(4);
  Dataset d;
  for (int i = 0; i < 40; ++i) d.add({0.0}, 0);
  for (int i = 0; i < 10; ++i) d.add({1.0}, 1);
  const auto split = stratified_split(d, 0.2, rng);
  EXPECT_EQ(split.train.positive_count(), 2u);
  EXPECT_EQ(split.train.size(), 10u);
  EXPECT_EQ(split.validation.positive_count(), 8u);
}

TEST(Scaler, StandardizesColumns) {
  StandardScaler scaler;
  scaler.fit({{0.0, 10.0}, {2.0, 20.0}, {4.0, 30.0}});
  const auto out = scaler.transform({{2.0, 20.0}});
  EXPECT_NEAR(out[0][0], 0.0, 1e-12);
  EXPECT_NEAR(out[0][1], 0.0, 1e-12);
  const auto hi = scaler.transform_row({4.0, 30.0});
  EXPECT_GT(hi[0], 1.0);
  EXPECT_NEAR(hi[0], hi[1], 1e-12);
}

TEST(Scaler, ConstantColumnMapsToZero) {
  StandardScaler scaler;
  scaler.fit({{5.0}, {5.0}, {5.0}});
  EXPECT_NEAR(scaler.transform_row({5.0})[0], 0.0, 1e-12);
}

TEST(Scaler, UnfittedThrows) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform_row({1.0}), Error);
}

TEST(LogisticRegression, LearnsSeparableBlobs) {
  Rng rng(5);
  const Dataset data = separable_blobs(50, rng);
  LogisticRegression model;
  model.fit(data);
  const auto predictions = model.predict_all(data.features);
  EXPECT_DOUBLE_EQ(accuracy(data.labels, predictions), 1.0);
}

TEST(LogisticRegression, ProbabilitiesAreCalibratedDirectionally) {
  Rng rng(6);
  const Dataset data = separable_blobs(50, rng);
  LogisticRegression model;
  model.fit(data);
  EXPECT_LT(model.predict_probability({-2.0, -2.0}), 0.1);
  EXPECT_GT(model.predict_probability({2.0, 2.0}), 0.9);
}

TEST(LogisticRegression, LossDecreasesDuringTraining) {
  Rng rng(7);
  const Dataset data = separable_blobs(30, rng);
  LogisticRegression model({0.5, 1e-4, 1, 1e-12});  // one iteration
  model.fit(data);
  const double one_step_loss = model.loss(data);
  LogisticRegression trained;  // full training
  trained.fit(data);
  EXPECT_LT(trained.loss(data), one_step_loss);
}

TEST(LogisticRegression, WidthMismatchThrows) {
  Rng rng(8);
  const Dataset data = separable_blobs(5, rng);
  LogisticRegression model;
  model.fit(data);
  EXPECT_THROW(model.predict_probability({1.0}), Error);
}

TEST(LogisticRegression, EmptyDatasetThrows) {
  LogisticRegression model;
  EXPECT_THROW(model.fit(Dataset{}), Error);
}

TEST(Metrics, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(accuracy({1, 0, 1, 0}, {1, 0, 0, 0}), 0.75);
  EXPECT_THROW(accuracy({}, {}), Error);
  EXPECT_THROW(accuracy({1}, {1, 0}), Error);
}

TEST(Metrics, MeanAbsoluteError) {
  EXPECT_DOUBLE_EQ(mean_absolute_error({1.0, 2.0}, {1.5, 1.0}), 0.75);
}

TEST(Metrics, ConfusionMatrixCounts) {
  const auto m = confusion_matrix({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_EQ(m.true_positive, 2u);
  EXPECT_EQ(m.false_negative, 1u);
  EXPECT_EQ(m.true_negative, 1u);
  EXPECT_EQ(m.false_positive, 1u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(m.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall(), 2.0 / 3.0);
  EXPECT_NEAR(m.f1(), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, ConfusionMatrixDegenerate) {
  const auto m = confusion_matrix({0, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(m.precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.f1(), 0.0);
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
}

}  // namespace
}  // namespace qtda
