// Tests for topology/persistent_laplacian.hpp and the quantum persistent
// Betti estimator (core/persistent_estimator.hpp).
#include "topology/persistent_laplacian.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "core/persistent_estimator.hpp"
#include "linalg/matrix_ops.hpp"
#include "linalg/pseudo_inverse.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "topology/laplacian.hpp"
#include "topology/persistence.hpp"
#include "topology/random_complex.hpp"

namespace qtda {
namespace {

TEST(PseudoInverse, DiagonalWithZeroEigenvalue) {
  RealMatrix d(2, 2);
  d(0, 0) = 4.0;  // d(1,1) = 0
  const auto pinv = pseudo_inverse_symmetric(d);
  EXPECT_NEAR(pinv(0, 0), 0.25, 1e-12);
  EXPECT_NEAR(pinv(1, 1), 0.0, 1e-12);
}

TEST(PseudoInverse, PenroseConditions) {
  Rng rng(3);
  // Rank-deficient PSD matrix A = BᵀB with thin B.
  RealMatrix b(2, 4);
  for (std::size_t i = 0; i < b.size(); ++i)
    b.data()[i] = rng.uniform(-1.0, 1.0);
  const auto a = matmul(transpose(b), b);  // 4×4, rank ≤ 2
  const auto pinv = pseudo_inverse_symmetric(a);
  // A·A⁺·A = A and A⁺·A·A⁺ = A⁺.
  EXPECT_LT(max_abs_diff(matmul(a, matmul(pinv, a)), a), 1e-9);
  EXPECT_LT(max_abs_diff(matmul(pinv, matmul(a, pinv)), pinv), 1e-9);
  // A·A⁺ symmetric.
  const auto proj = matmul(a, pinv);
  EXPECT_TRUE(is_symmetric(proj, 1e-9));
}

SimplicialComplex hollow_triangle() {
  return SimplicialComplex::from_simplices(
      {Simplex{0, 1}, Simplex{1, 2}, Simplex{0, 2}}, true);
}

SimplicialComplex filled_triangle() {
  return SimplicialComplex::from_simplices({Simplex{0, 1, 2}}, true);
}

TEST(PersistentLaplacian, EqualPairReducesToOrdinaryLaplacian) {
  const auto complex = hollow_triangle();
  const auto persistent = persistent_laplacian(complex, complex, 1);
  const auto ordinary = combinatorial_laplacian(complex, 1);
  EXPECT_LT(max_abs_diff(persistent, ordinary), 1e-12);
}

TEST(PersistentLaplacian, DyingLoopHasTrivialKernel) {
  // K = hollow triangle (β1 = 1), L = filled triangle: the loop dies, so
  // β1^{K,L} = 0 and the persistent Laplacian has no kernel.
  EXPECT_EQ(persistent_betti_via_laplacian(hollow_triangle(),
                                           filled_triangle(), 1),
            0u);
  // While the ordinary β1 of K is 1.
  EXPECT_EQ(count_zero_eigenvalues(
                combinatorial_laplacian(hollow_triangle(), 1)),
            1u);
}

TEST(PersistentLaplacian, MergingComponents) {
  // K: two vertices, no edges (β0 = 2).  L: an edge joins them.
  // β0^{K,L} = 1 — the two components map to one class.
  const auto k = SimplicialComplex::from_simplices(
      {Simplex{0}, Simplex{1}}, false);
  const auto l =
      SimplicialComplex::from_simplices({Simplex{0, 1}}, true);
  EXPECT_EQ(persistent_betti_via_laplacian(k, l, 0), 1u);
}

TEST(PersistentLaplacian, NotASubcomplexThrows) {
  const auto k = SimplicialComplex::from_simplices(
      {Simplex{0, 3}}, true);
  EXPECT_THROW(persistent_laplacian(k, filled_triangle(), 1), Error);
}

TEST(PersistentLaplacian, IsSymmetricPositiveSemidefinite) {
  Rng rng(7);
  PointCloud cloud(random_point_cloud(8, 2, rng));
  const auto filtration = rips_filtration(cloud, 0.9, 2);
  for (const auto& [b, d] : {std::pair{0.3, 0.5}, std::pair{0.4, 0.8}}) {
    const auto sub = filtration.complex_at(b);
    if (sub.count(1) == 0) continue;
    const auto laplacian =
        persistent_laplacian(filtration, 1, b, d);
    EXPECT_TRUE(is_symmetric(laplacian, 1e-9));
    for (double v : symmetric_eigenvalues(laplacian))
      EXPECT_GE(v, -1e-8);
  }
}

class PersistentBettiAgainstDiagram
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PersistentBettiAgainstDiagram, LaplacianNullityMatchesReduction) {
  // The central theorem, verified empirically: nullity(Δ_k^{b,d}) equals
  // the persistent Betti number from the matrix-reduction algorithm, for
  // random point clouds and grids of scale pairs, k ∈ {0, 1}.
  Rng rng(GetParam() * 11 + 5);
  PointCloud cloud(random_point_cloud(8, 2, rng));
  const auto filtration = rips_filtration(cloud, 1.0, 2);
  const auto diagram = compute_persistence(filtration);
  for (double b : {0.25, 0.45, 0.65}) {
    for (double d : {0.0, 0.15, 0.3}) {
      const double death = b + d;
      const auto sub = filtration.complex_at(b);
      for (int k = 0; k <= 1; ++k) {
        if (sub.count(k) == 0) continue;
        const auto via_laplacian = persistent_betti_via_laplacian(
            sub, filtration.complex_at(death), k);
        const auto via_reduction = diagram.persistent_betti(k, b, death);
        EXPECT_EQ(via_laplacian, via_reduction)
            << "seed=" << GetParam() << " b=" << b << " d=" << death
            << " k=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistentBettiAgainstDiagram,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SparsePersistentLaplacian, MatchesDenseAssemblyOnRandomFiltrations) {
  // The CSR assembly (gram_sparse/sparse_add + CSR block extraction for the
  // Schur complement) must agree with the dense wrapper on both branches:
  // shared k-simplices (fully sparse) and strict inclusions (dense Schur
  // correction).
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed * 17 + 3);
    PointCloud cloud(random_point_cloud(8, 2, rng));
    const auto filtration = rips_filtration(cloud, 1.0, 2);
    for (const auto& [b, d] :
         {std::pair{0.3, 0.3}, std::pair{0.35, 0.55}, std::pair{0.5, 0.9}}) {
      const auto sub = filtration.complex_at(b);
      for (int k = 0; k <= 1; ++k) {
        if (sub.count(k) == 0) continue;
        const SparseMatrix sparse =
            sparse_persistent_laplacian(filtration, k, b, d);
        const RealMatrix dense = persistent_laplacian(filtration, k, b, d);
        EXPECT_EQ(sparse.rows(), dense.rows());
        EXPECT_LT(max_abs_diff(sparse.to_dense(), dense), 1e-12)
            << "seed=" << seed << " b=" << b << " d=" << d << " k=" << k;
      }
    }
  }
}

TEST(SparsePersistentLaplacian, SharedKSimplicesStaySparse) {
  // K and L share the edges (only a triangle fill is added), so the up
  // Schur complement is a permuted CSR submatrix: the assembly never forms
  // a dense matrix and the nonzero count stays at the sparse Laplacian's.
  const auto sparse = sparse_persistent_laplacian(hollow_triangle(),
                                                  filled_triangle(), 1);
  EXPECT_EQ(sparse.rows(), 3u);
  EXPECT_LE(sparse.nonzeros(), 9u);
  EXPECT_LT(max_abs_diff(
                sparse.to_dense(),
                persistent_laplacian(hollow_triangle(), filled_triangle(), 1)),
            1e-12);
}

TEST(QuantumPersistentBetti, SparseBackendMatchesDenseBackendEstimates) {
  // The kCircuitSparse route now consumes the sparse persistent Laplacian
  // directly; its estimate must match the dense-oracle route.
  EstimatorOptions dense_options;
  dense_options.backend = EstimatorBackend::kCircuitExact;
  dense_options.precision_qubits = 4;
  dense_options.shots = 20000;
  EstimatorOptions sparse_options = dense_options;
  sparse_options.backend = EstimatorBackend::kCircuitSparse;
  const auto dense_estimate = estimate_persistent_betti(
      hollow_triangle(), filled_triangle(), 1, dense_options);
  const auto sparse_estimate = estimate_persistent_betti(
      hollow_triangle(), filled_triangle(), 1, sparse_options);
  EXPECT_NEAR(sparse_estimate.exact_zero_probability,
              dense_estimate.exact_zero_probability, 1e-9);
  EXPECT_NEAR(sparse_estimate.zero_probability,
              dense_estimate.zero_probability, 0.02);
  EXPECT_EQ(sparse_estimate.rounded_betti, dense_estimate.rounded_betti);
}

TEST(QuantumPersistentBetti, EstimatesTheDyingLoop) {
  // Quantum route: β1^{K,L} = 0 for hollow → filled triangle, while the
  // ordinary quantum estimate of β1(K) is 1.
  EstimatorOptions options;
  options.precision_qubits = 9;
  options.shots = 100000;
  const auto persistent = estimate_persistent_betti(
      hollow_triangle(), filled_triangle(), 1, options);
  EXPECT_EQ(persistent.rounded_betti, 0u);
  const auto ordinary = estimate_betti(hollow_triangle(), 1, options);
  EXPECT_EQ(ordinary.rounded_betti, 1u);
}

TEST(QuantumPersistentBetti, MatchesClassicalOnRandomFiltration) {
  Rng rng(13);
  PointCloud cloud(random_point_cloud(7, 2, rng));
  const auto filtration = rips_filtration(cloud, 0.8, 2);
  const double b = 0.4, d = 0.6;
  const auto sub = filtration.complex_at(b);
  if (sub.count(1) == 0) GTEST_SKIP() << "no edges at b";
  EstimatorOptions options;
  options.precision_qubits = 9;
  options.shots = 200000;
  const auto estimate =
      estimate_persistent_betti(filtration, 1, b, d, options);
  const auto classical = persistent_betti_via_laplacian(
      sub, filtration.complex_at(d), 1);
  EXPECT_EQ(estimate.rounded_betti, classical);
}

TEST(QuantumPersistentBetti, EmptyDimensionGivesZero) {
  EstimatorOptions options;
  const auto k = SimplicialComplex::from_simplices({Simplex{0}}, false);
  const auto estimate = estimate_persistent_betti(k, k, 1, options);
  EXPECT_EQ(estimate.rounded_betti, 0u);
}

}  // namespace
}  // namespace qtda
