// Tests for quantum/qasm.hpp.
#include "quantum/qasm.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/betti_estimator.hpp"
#include "quantum/trotter.hpp"
#include "topology/laplacian.hpp"
#include "topology/simplicial_complex.hpp"

namespace qtda {
namespace {

TEST(Qasm, HeaderAndRegisters) {
  Circuit c(2);
  c.h(0);
  const std::string qasm = to_qasm(c);
  EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(qasm.find("include \"qelib1.inc\";"), std::string::npos);
  EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
  EXPECT_NE(qasm.find("creg c[2];"), std::string::npos);
  EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("measure q[1] -> c[1];"), std::string::npos);
}

TEST(Qasm, NamedGateMnemonics) {
  Circuit c(3);
  c.x(0);
  c.sdg(1);
  c.tdg(2);
  c.rz(0, 0.5);
  c.phase(1, 0.25);
  c.cnot(0, 1);
  c.cz(1, 2);
  c.controlled_phase(0, 2, 1.5);
  const std::string qasm = to_qasm(c);
  EXPECT_NE(qasm.find("x q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("sdg q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("tdg q[2];"), std::string::npos);
  EXPECT_NE(qasm.find("rz(0.5) q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("u1(0.25) q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("cz q[1],q[2];"), std::string::npos);
  EXPECT_NE(qasm.find("cu1(1.5) q[0],q[2];"), std::string::npos);
}

TEST(Qasm, ToffoliAndOptions) {
  Circuit c(3);
  Gate toffoli;
  toffoli.kind = GateKind::kX;
  toffoli.targets = {2};
  toffoli.controls = {0, 1};
  c.append(toffoli);
  QasmOptions options;
  options.register_name = "wires";
  options.include_measurements = false;
  const std::string qasm = to_qasm(c, options);
  EXPECT_NE(qasm.find("ccx wires[0],wires[1],wires[2];"), std::string::npos);
  EXPECT_EQ(qasm.find("measure"), std::string::npos);
  EXPECT_EQ(qasm.find("creg"), std::string::npos);
}

TEST(Qasm, GlobalPhaseComment) {
  Circuit c(1);
  c.add_global_phase(0.75);
  const std::string qasm = to_qasm(c);
  EXPECT_NE(qasm.find("// global phase: 0.75"), std::string::npos);
}

TEST(Qasm, DenseUnitaryRejected) {
  Circuit c(2);
  c.unitary(ComplexMatrix::identity(4), {0, 1});
  EXPECT_THROW(to_qasm(c), Error);
}

TEST(Qasm, TooManyControlsRejected) {
  Circuit c(4);
  Gate g;
  g.kind = GateKind::kH;
  g.targets = {3};
  g.controls = {0, 1, 2};
  c.append(g);
  EXPECT_THROW(to_qasm(c), Error);
}

TEST(Qasm, TrotterizedQtdaCircuitExports) {
  // The paper's full Trotterized QPE circuit must serialize: every gate it
  // contains (H, RX, RZ, P, CX, CCX, controlled rotations) has a QASM form.
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{0, 1}, Simplex{1, 2}, Simplex{0, 2}}, true);
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitTrotter;
  options.precision_qubits = 2;
  options.trotter = {1, 1};
  const Circuit circuit =
      build_qtda_circuit(combinatorial_laplacian(complex, 1), options);
  const std::string qasm = to_qasm(circuit);
  EXPECT_NE(qasm.find("qreg q[6];"), std::string::npos);  // 2 + 2 + 2
  // Rough size sanity: one line per gate plus header + measurements.
  std::size_t lines = 0;
  for (char ch : qasm)
    if (ch == '\n') ++lines;
  EXPECT_GE(lines, circuit.gate_count());
}

TEST(Qasm, AngleRoundTripPrecision) {
  Circuit c(1);
  c.rz(0, 1.0 / 3.0);
  const std::string qasm = to_qasm(c);
  EXPECT_NE(qasm.find("rz(0.33333333333333331) q[0];"), std::string::npos);
}

}  // namespace
}  // namespace qtda
