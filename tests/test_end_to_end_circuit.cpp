// Circuit-level end-to-end checks on the actual QTDA workload: the
// optimizer must preserve the QPE outcome distribution of the paper's
// Trotterized circuit, and the density-matrix simulator must agree with the
// state-vector simulator on it.
#include <gtest/gtest.h>

#include <cmath>

#include "core/betti_estimator.hpp"
#include "quantum/density_matrix.hpp"
#include "quantum/executor.hpp"
#include "quantum/optimizer.hpp"
#include "quantum/qpe.hpp"
#include "topology/laplacian.hpp"
#include "topology/simplicial_complex.hpp"

namespace qtda {
namespace {

RealMatrix hollow_triangle_laplacian() {
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{0, 1}, Simplex{1, 2}, Simplex{0, 2}}, true);
  return combinatorial_laplacian(complex, 1);
}

EstimatorOptions trotter_options() {
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitTrotter;
  options.precision_qubits = 3;
  options.shots = 100;
  options.trotter = {2, 2};
  return options;
}

TEST(EndToEndCircuit, OptimizerPreservesQpeDistribution) {
  const auto laplacian = hollow_triangle_laplacian();
  const auto options = trotter_options();
  const Circuit circuit = build_qtda_circuit(laplacian, options);

  OptimizerReport report;
  const Circuit optimized = optimize_circuit(circuit, &report);
  EXPECT_LT(report.gates_after, report.gates_before);
  EXPECT_LE(report.depth_after, report.depth_before);

  QpeLayout layout{options.precision_qubits, 2, 2};
  const auto wires = layout.precision_wires();
  const auto before = run_circuit(circuit).marginal_probabilities(wires);
  const auto after = run_circuit(optimized).marginal_probabilities(wires);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t m = 0; m < before.size(); ++m)
    EXPECT_NEAR(before[m], after[m], 1e-10) << "outcome " << m;
}

TEST(EndToEndCircuit, BuildQtdaCircuitMatchesEstimatorAccounting) {
  const auto laplacian = hollow_triangle_laplacian();
  const auto options = trotter_options();
  const Circuit circuit = build_qtda_circuit(laplacian, options);
  const auto estimate = estimate_betti_from_laplacian(laplacian, options);
  EXPECT_EQ(circuit.gate_count(), estimate.circuit_gates);
  EXPECT_EQ(circuit.depth(), estimate.circuit_depth);
  EXPECT_EQ(circuit.num_qubits(), estimate.total_qubits);
}

TEST(EndToEndCircuit, BuildQtdaCircuitRejectsAnalyticBackend) {
  EstimatorOptions options;  // defaults to kAnalytic
  EXPECT_THROW(build_qtda_circuit(hollow_triangle_laplacian(), options),
               Error);
}

TEST(EndToEndCircuit, DensityMatrixAgreesWithStatevectorOnQtdaCircuit) {
  const auto laplacian = hollow_triangle_laplacian();
  EstimatorOptions options = trotter_options();
  options.backend = EstimatorBackend::kCircuitExact;
  const Circuit circuit = build_qtda_circuit(laplacian, options);

  QpeLayout layout{options.precision_qubits, 2, 2};
  const auto wires = layout.precision_wires();
  const auto pure = run_circuit(circuit).marginal_probabilities(wires);
  const auto mixed = run_circuit_density(circuit).marginal_probabilities(wires);
  for (std::size_t m = 0; m < pure.size(); ++m)
    EXPECT_NEAR(pure[m], mixed[m], 1e-9) << "outcome " << m;
}

TEST(EndToEndCircuit, SampledBasisAverageEqualsPurifiedMarginal) {
  // Averaging the QPE distribution over all initial basis states (the
  // classical mixture) must equal the purified circuit's marginal.
  const auto laplacian = hollow_triangle_laplacian();
  EstimatorOptions options = trotter_options();
  options.backend = EstimatorBackend::kCircuitExact;

  // Purified circuit: t + q + q wires.
  const Circuit purified = build_qtda_circuit(laplacian, options);
  QpeLayout purified_layout{options.precision_qubits, 2, 2};
  const auto purified_marginal =
      run_circuit(purified).marginal_probabilities(
          purified_layout.precision_wires());

  // Sampled-basis circuit: t + q wires, averaged by hand.
  options.mixed_state = MixedStateMode::kSampledBasis;
  const Circuit bare = build_qtda_circuit(laplacian, options);
  QpeLayout bare_layout{options.precision_qubits, 2, 0};
  std::vector<double> averaged(1 << options.precision_qubits, 0.0);
  const std::uint64_t q_dim = 4;
  for (std::uint64_t basis = 0; basis < q_dim; ++basis) {
    Statevector state(bare.num_qubits());
    state.set_basis_state(basis);  // system wires are the lowest bits
    state.apply_circuit(bare);
    const auto marginal =
        state.marginal_probabilities(bare_layout.precision_wires());
    for (std::size_t m = 0; m < averaged.size(); ++m)
      averaged[m] += marginal[m] / static_cast<double>(q_dim);
  }
  for (std::size_t m = 0; m < averaged.size(); ++m)
    EXPECT_NEAR(averaged[m], purified_marginal[m], 1e-9) << "outcome " << m;
}

}  // namespace
}  // namespace qtda
