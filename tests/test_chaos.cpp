// Fault-tolerance tests: deterministic chaos injection on the serving
// transports, client retry/backoff convergence (retried results must be
// bit-identical to fault-free ones), admission-control load shedding,
// request limits, execution-deadline cancellation, and the error taxonomy.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/errors.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"

namespace qtda {
namespace {

std::vector<std::vector<double>> circle_points(std::size_t n) {
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 6.283185307179586 * static_cast<double>(i) /
                         static_cast<double>(n);
    points.push_back({std::cos(angle), std::sin(angle)});
  }
  return points;
}

/// Small, fast request — chaos tests run many round trips.
EstimateRequest chaos_request(std::uint64_t seed) {
  EstimateRequest request;
  request.points = circle_points(6);
  request.epsilon = 1.2;
  request.k = 1;
  request.options.backend = EstimatorBackend::kCircuitSparse;
  request.options.precision_qubits = 2;
  request.options.shots = 64;
  request.options.seed = seed;
  return request;
}

ServerOptions small_server_options() {
  ServerOptions options;
  options.cache.budget_bytes = std::size_t{32} << 20;
  return options;
}

/// Fault-free reference results for seeds 100..100+rounds — what every
/// chaos run must converge to, bit for bit.
std::vector<BettiEstimate> reference_estimates(int rounds) {
  BettiServer reference(small_server_options());
  std::vector<BettiEstimate> expected;
  expected.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    const EstimateResponse response =
        reference.handle(chaos_request(100 + static_cast<std::uint64_t>(r)));
    EXPECT_TRUE(response.ok) << response.error;
    expected.push_back(response.estimate);
  }
  return expected;
}

RetryPolicy resilient_policy(std::uint64_t jitter_seed,
                             std::uint64_t timeout_ms = 0) {
  RetryPolicy policy;
  policy.max_attempts = 16;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 8;
  policy.request_timeout_ms = timeout_ms;
  policy.jitter_seed = jitter_seed;
  return policy;
}

/// Runs `rounds` sequential estimates over a chaos-wrapped loopback and
/// asserts every one converges to the fault-free bits.  Returns the
/// injection counters so callers can assert their fault class actually
/// fired (a chaos test that injects nothing is vacuous).
ChaosStats converge_under_chaos(const FaultPlan& plan, RetryPolicy policy,
                                int rounds = 10) {
  const std::vector<BettiEstimate> expected = reference_estimates(rounds);

  BettiServer server(small_server_options());
  LoopbackTransport loopback;
  FaultInjectingTransport chaotic(loopback, plan);
  server.start(chaotic);
  {
    ServeClient client([&loopback] { return loopback.connect(); }, policy);
    for (int r = 0; r < rounds; ++r) {
      const EstimateResponse response =
          client.estimate(chaos_request(100 + static_cast<std::uint64_t>(r)));
      EXPECT_TRUE(response.ok) << response.error;
      const std::size_t i = static_cast<std::size_t>(r);
      EXPECT_EQ(response.estimate.zero_counts, expected[i].zero_counts);
      EXPECT_EQ(response.estimate.estimated_betti,
                expected[i].estimated_betti);
      EXPECT_EQ(response.estimate.zero_probability,
                expected[i].zero_probability);
    }
  }
  server.stop();
  return chaotic.stats();
}

// ------------------------------------------------------------- fault plans

TEST(FaultPlan, ParsesAndRoundTrips) {
  const FaultPlan plan = FaultPlan::parse(
      "42:drop_read=0.25,torn_write=0.5,delay_read=0.125,delay_ms=3,"
      "drop_write@7,fail_accept@0");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.drop_read, 0.25);
  EXPECT_DOUBLE_EQ(plan.torn_write, 0.5);
  EXPECT_DOUBLE_EQ(plan.delay_read, 0.125);
  EXPECT_DOUBLE_EQ(plan.corrupt_read, 0.0);
  EXPECT_EQ(plan.delay_ms, 3u);
  ASSERT_EQ(plan.script.size(), 2u);
  EXPECT_EQ(plan.script[0].kind, FaultKind::kDropWrite);
  EXPECT_EQ(plan.script[0].index, 7u);
  EXPECT_EQ(plan.script[1].kind, FaultKind::kFailAccept);
  EXPECT_EQ(plan.script[1].index, 0u);

  // spec() → parse() is the identity on every field.
  const FaultPlan reparsed = FaultPlan::parse(plan.spec());
  EXPECT_EQ(reparsed.spec(), plan.spec());
  EXPECT_EQ(reparsed.seed, plan.seed);
  EXPECT_EQ(reparsed.script.size(), plan.script.size());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("no-colon"), Error);
  EXPECT_THROW(FaultPlan::parse("x:drop_read=0.1"), Error);   // bad seed
  EXPECT_THROW(FaultPlan::parse("1:drop_read=1.5"), Error);   // p > 1
  EXPECT_THROW(FaultPlan::parse("1:unknown_fault=0.5"), Error);
  EXPECT_THROW(FaultPlan::parse("1:drop_read@abc"), Error);
  EXPECT_THROW(FaultPlan::parse("1:drop_read"), Error);
}

// ----------------------------------------------------------- error taxonomy

TEST(ErrorTaxonomy, NamesRoundTrip) {
  for (const ServeErrorCode code :
       {ServeErrorCode::kProtocol, ServeErrorCode::kLimit,
        ServeErrorCode::kOverloaded, ServeErrorCode::kDeadline,
        ServeErrorCode::kShutdown, ServeErrorCode::kInternal,
        ServeErrorCode::kUnavailable, ServeErrorCode::kTimeout}) {
    EXPECT_EQ(serve_error_from_name(serve_error_name(code)), code);
  }
  // Unknown names classify conservatively (internal, not retryable).
  EXPECT_EQ(serve_error_from_name("martian"), ServeErrorCode::kInternal);
}

TEST(ErrorTaxonomy, RetryabilityContract) {
  // Retryable: the request itself is fine, the moment was wrong.
  EXPECT_TRUE(serve_error_retryable(ServeErrorCode::kOverloaded));
  EXPECT_TRUE(serve_error_retryable(ServeErrorCode::kShutdown));
  EXPECT_TRUE(serve_error_retryable(ServeErrorCode::kUnavailable));
  EXPECT_TRUE(serve_error_retryable(ServeErrorCode::kTimeout));
  // Non-retryable: resending the identical request cannot succeed.
  EXPECT_FALSE(serve_error_retryable(ServeErrorCode::kProtocol));
  EXPECT_FALSE(serve_error_retryable(ServeErrorCode::kLimit));
  EXPECT_FALSE(serve_error_retryable(ServeErrorCode::kDeadline));
  EXPECT_FALSE(serve_error_retryable(ServeErrorCode::kInternal));
}

TEST(ErrorTaxonomy, TypedErrorCarriesCodeAndHint) {
  const ServeError error(ServeErrorCode::kOverloaded, "queue full", 7);
  EXPECT_EQ(error.code(), ServeErrorCode::kOverloaded);
  EXPECT_TRUE(error.retryable());
  EXPECT_EQ(error.retry_after_ms(), 7u);
  EXPECT_NE(std::string(error.what()).find("overloaded"), std::string::npos);
}

TEST(Protocol, ErrorResponseRoundTripsTaxonomyFields) {
  EstimateResponse response;
  response.id = "r9";
  response.ok = false;
  response.code = ServeErrorCode::kOverloaded;
  response.retryable = true;
  response.retry_after_ms = 12;
  response.error = "admission queue full — retry after backoff";
  const EstimateResponse parsed = parse_response(format_response(response));
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.id, "r9");
  EXPECT_EQ(parsed.code, ServeErrorCode::kOverloaded);
  EXPECT_TRUE(parsed.retryable);
  EXPECT_EQ(parsed.retry_after_ms, 12u);
  EXPECT_EQ(parsed.error, response.error);
}

TEST(Protocol, OldStyleErrorLineDefaultsToInternal) {
  // Pre-taxonomy lines carry only id and msg: parse as non-retryable
  // internal so old peers fail safe.
  const EstimateResponse parsed = parse_response("error id=r3 msg=boom");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.code, ServeErrorCode::kInternal);
  EXPECT_FALSE(parsed.retryable);
  EXPECT_EQ(parsed.error, "boom");
}

// ------------------------------------------------------------ retry backoff

TEST(RetryBackoff, CappedExponentialWithJitterBounds) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 2;
  policy.max_backoff_ms = 16;
  policy.multiplier = 2.0;
  // jitter01 = 1 → full nominal backoff: 2, 4, 8, 16, 16 (capped).
  EXPECT_EQ(retry_backoff_ms(policy, 0, 1.0), 2u);
  EXPECT_EQ(retry_backoff_ms(policy, 1, 1.0), 4u);
  EXPECT_EQ(retry_backoff_ms(policy, 2, 1.0), 8u);
  EXPECT_EQ(retry_backoff_ms(policy, 3, 1.0), 16u);
  EXPECT_EQ(retry_backoff_ms(policy, 9, 1.0), 16u);
  // jitter01 = 0 → half the nominal value, never zeroing the schedule.
  EXPECT_EQ(retry_backoff_ms(policy, 0, 0.0), 1u);
  EXPECT_EQ(retry_backoff_ms(policy, 3, 0.0), 8u);
}

// ------------------------------------------------------ cancellation spine

TEST(Cancel, UnarmedCheckpointIsNoop) {
  EXPECT_FALSE(cancel::deadline_armed());
  EXPECT_NO_THROW(cancel::checkpoint());
}

TEST(Cancel, ExpiredDeadlineThrowsAndScopesNest) {
  const auto now = std::chrono::steady_clock::now();
  cancel::ScopedDeadline outer(now + std::chrono::hours(1));
  EXPECT_TRUE(cancel::deadline_armed());
  EXPECT_NO_THROW(cancel::checkpoint());
  {
    cancel::ScopedDeadline inner(now - std::chrono::milliseconds(1));
    EXPECT_THROW(cancel::checkpoint(), CancelledError);
  }
  // Inner scope gone: the outer (future) deadline is armed again.
  EXPECT_TRUE(cancel::deadline_armed());
  EXPECT_NO_THROW(cancel::checkpoint());
}

// --------------------------------------------- per-fault-class convergence

TEST(Chaos, ConvergesUnderDroppedReads) {
  FaultPlan plan = FaultPlan::parse("3:drop_read=0.2");
  const ChaosStats stats =
      converge_under_chaos(plan, resilient_policy(/*jitter_seed=*/51));
  EXPECT_GT(stats.dropped_reads, 0u);
}

TEST(Chaos, ConvergesUnderDroppedWrites) {
  FaultPlan plan = FaultPlan::parse("4:drop_write=0.2");
  const ChaosStats stats =
      converge_under_chaos(plan, resilient_policy(/*jitter_seed=*/52));
  EXPECT_GT(stats.dropped_writes, 0u);
}

TEST(Chaos, ConvergesUnderTornWrites) {
  FaultPlan plan = FaultPlan::parse("5:torn_write=0.2");
  const ChaosStats stats =
      converge_under_chaos(plan, resilient_policy(/*jitter_seed=*/53));
  EXPECT_GT(stats.torn_writes, 0u);
}

TEST(Chaos, ConvergesUnderCorruptedFrames) {
  // Corrupted requests are answered with an id-less protocol error, so the
  // client needs its per-attempt timeout to recover.
  FaultPlan plan = FaultPlan::parse("6:corrupt_read=0.2");
  const ChaosStats stats = converge_under_chaos(
      plan, resilient_policy(/*jitter_seed=*/54, /*timeout_ms=*/500));
  EXPECT_GT(stats.corrupted_reads, 0u);
}

TEST(Chaos, ConvergesUnderDelayedReads) {
  FaultPlan plan = FaultPlan::parse("7:delay_read=0.4,delay_ms=2");
  const ChaosStats stats =
      converge_under_chaos(plan, resilient_policy(/*jitter_seed=*/55));
  EXPECT_GT(stats.delayed_reads, 0u);
}

TEST(Chaos, ConvergesUnderFailedAccepts) {
  FaultPlan plan = FaultPlan::parse("8:fail_accept@0,fail_accept@2");
  const ChaosStats stats =
      converge_under_chaos(plan, resilient_policy(/*jitter_seed=*/56));
  EXPECT_GT(stats.failed_accepts, 0u);
}

TEST(Chaos, ScriptedFaultFiresExactlyOnceAcrossReconnects) {
  // "Drop the very first read" — the retry's read has global index > 0, so
  // the fault must not re-fire after the reconnect (a per-connection
  // counter would re-drop read 0 of every fresh connection, forever).
  const std::vector<BettiEstimate> expected = reference_estimates(1);
  BettiServer server(small_server_options());
  LoopbackTransport loopback;
  FaultInjectingTransport chaotic(loopback,
                                  FaultPlan::parse("9:drop_read@0"));
  server.start(chaotic);
  {
    ServeClient client([&loopback] { return loopback.connect(); },
                       resilient_policy(/*jitter_seed=*/57));
    const EstimateResponse response = client.estimate(chaos_request(100));
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.estimate.zero_counts, expected[0].zero_counts);
    EXPECT_EQ(client.retries(), 1u);
    EXPECT_EQ(client.reconnects(), 1u);
  }
  server.stop();
  EXPECT_EQ(chaotic.stats().dropped_reads, 1u);
}

TEST(ChaosSoak, EnvOrDefaultMixedFaultsConverge) {
  // CI's chaos-soak step points QTDA_CHAOS at fixed seeds; locally the
  // fallback spec exercises every fault class at once.
  const char* raw = std::getenv("QTDA_CHAOS");
  const FaultPlan plan = FaultPlan::parse(
      (raw != nullptr && raw[0] != '\0')
          ? raw
          : "11:drop_read=0.08,drop_write=0.08,torn_write=0.08,"
            "corrupt_read=0.05,delay_read=0.1,delay_ms=1,fail_accept=0.1");
  const ChaosStats stats = converge_under_chaos(
      plan, resilient_policy(/*jitter_seed=*/58, /*timeout_ms=*/1000),
      /*rounds=*/12);
  EXPECT_GT(stats.total(), 0u);
}

// ------------------------------------------------- admission control / shed

TEST(Server, ShedsPastQueueBoundWithRetryableOverloaded) {
  ServerOptions options = small_server_options();
  options.workers = 1;
  options.batching = false;
  options.max_queue = 1;
  options.shed_retry_after_ms = 3;
  BettiServer server(options);
  LoopbackTransport transport;
  server.start(transport);

  // Pipeline a burst far past the bound on a raw connection (no retries):
  // the worker serves what was admitted, the rest must come back shed.
  const int kBurst = 12;
  std::shared_ptr<Connection> connection = transport.connect();
  for (int i = 0; i < kBurst; ++i) {
    EstimateRequest request = chaos_request(100);
    request.id = "F" + std::to_string(i);
    ASSERT_TRUE(connection->write_line(format_request(request)));
  }
  int ok = 0, overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    const std::optional<std::string> line = connection->read_line();
    ASSERT_TRUE(line.has_value());
    const EstimateResponse response = parse_response(*line);
    if (response.ok) {
      ++ok;
    } else {
      ASSERT_EQ(response.code, ServeErrorCode::kOverloaded) << response.error;
      EXPECT_TRUE(response.retryable);
      EXPECT_EQ(response.retry_after_ms, 3u);
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_GT(overloaded, 0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, static_cast<std::size_t>(overloaded));
  EXPECT_EQ(stats.admitted, static_cast<std::size_t>(ok));

  // A retrying client against the same saturated server eventually lands
  // every request — shedding degrades into backoff, not failure.
  RetryPolicy policy = resilient_policy(/*jitter_seed=*/59);
  policy.max_attempts = 64;
  ServeClient retrying([&transport] { return transport.connect(); }, policy);
  const EstimateResponse settled = retrying.estimate(chaos_request(100));
  EXPECT_TRUE(settled.ok) << settled.error;
  server.stop();
}

// ------------------------------------------------------------ request limits

TEST(Server, RejectsRequestsPastLimits) {
  ServerOptions options = small_server_options();
  options.limits.max_points = 4;
  options.limits.max_precision_qubits = 3;
  options.limits.max_shots = 1000;
  BettiServer server(options);
  LoopbackTransport transport;
  server.start(transport);
  ServeClient client(transport.connect());

  const auto expect_limit = [&client](EstimateRequest request) {
    try {
      client.estimate(std::move(request));
      FAIL() << "expected a limit rejection";
    } catch (const ServeError& error) {
      EXPECT_EQ(error.code(), ServeErrorCode::kLimit) << error.what();
      EXPECT_FALSE(error.retryable());
    }
  };
  expect_limit(chaos_request(100));  // 6 points > max_points=4

  EstimateRequest too_precise = chaos_request(100);
  too_precise.points = circle_points(3);
  too_precise.options.precision_qubits = 5;
  expect_limit(std::move(too_precise));

  EstimateRequest too_many_shots = chaos_request(100);
  too_many_shots.points = circle_points(3);
  too_many_shots.options.shots = 100000;
  expect_limit(std::move(too_many_shots));

  // In-bounds request on the same connection still serves fine.
  EstimateRequest fits = chaos_request(100);
  fits.points = circle_points(3);
  const EstimateResponse response = client.estimate(std::move(fits));
  EXPECT_TRUE(response.ok) << response.error;
  server.stop();
}

TEST(Server, RejectsOversizedLinesBeforeParsing) {
  ServerOptions options = small_server_options();
  options.limits.max_line_bytes = 128;
  BettiServer server(options);
  LoopbackTransport transport;
  server.start(transport);
  std::shared_ptr<Connection> connection = transport.connect();

  EstimateRequest request = chaos_request(100);
  request.id = "big";
  const std::string line = format_request(request);
  ASSERT_GT(line.size(), options.limits.max_line_bytes);
  ASSERT_TRUE(connection->write_line(line));
  const std::optional<std::string> reply = connection->read_line();
  ASSERT_TRUE(reply.has_value());
  const EstimateResponse response = parse_response(*reply);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.id, "big");  // best-effort id from the intact frame
  EXPECT_EQ(response.code, ServeErrorCode::kLimit);
  EXPECT_FALSE(response.retryable);
  server.stop();
}

// ------------------------------------------------------- execution deadlines

TEST(Server, CancelsExecutionPastDeadline) {
  BettiServer server(small_server_options());
  LoopbackTransport transport;
  server.start(transport);
  ServeClient client(transport.connect());

  // Heavy enough that execution alone far exceeds the 1 ms budget — a
  // many-step Trotter plan walks tens of thousands of ops through the
  // executor's per-op checkpoints, which must cancel it instead of
  // running to completion (pre-PR deadlines only bounded queue time).
  EstimateRequest heavy = chaos_request(100);
  heavy.points = circle_points(8);
  heavy.epsilon = 3.0;
  heavy.options.backend = EstimatorBackend::kCircuitTrotter;
  heavy.options.trotter.steps = 128;
  heavy.options.precision_qubits = 4;
  heavy.deadline_ms = 1;
  try {
    client.estimate(std::move(heavy));
    FAIL() << "expected a deadline cancellation";
  } catch (const ServeError& error) {
    EXPECT_EQ(error.code(), ServeErrorCode::kDeadline) << error.what();
    EXPECT_FALSE(error.retryable());
  }
  EXPECT_GE(server.stats().deadline_misses, 1u);

  // The worker survived the cancellation and keeps serving.
  const EstimateResponse after = client.estimate(chaos_request(100));
  EXPECT_TRUE(after.ok) << after.error;
  server.stop();
}

// --------------------------------------------------------------- TCP smoke

TEST(TcpTransport, RoundTripsBitIdentically) {
  const std::vector<BettiEstimate> expected = reference_estimates(1);
  BettiServer server(small_server_options());
  TcpTransport tcp(0);
  ASSERT_NE(tcp.port(), 0);  // ephemeral port resolved at bind time
  server.start(tcp);
  {
    ServeClient client(connect_tcp(tcp.host(), tcp.port()));
    const EstimateResponse first = client.estimate(chaos_request(100));
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_EQ(first.estimate.zero_counts, expected[0].zero_counts);
    EXPECT_EQ(first.estimate.estimated_betti, expected[0].estimated_betti);
    const EstimateResponse second = client.estimate(chaos_request(100));
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(second.estimate.zero_counts, first.estimate.zero_counts);
  }
  server.stop();
}

TEST(TcpTransport, ConvergesUnderChaos) {
  const int rounds = 6;
  const std::vector<BettiEstimate> expected = reference_estimates(rounds);
  BettiServer server(small_server_options());
  TcpTransport tcp(0);
  FaultInjectingTransport chaotic(
      tcp, FaultPlan::parse("13:drop_read=0.15,torn_write=0.15"));
  server.start(chaotic);
  {
    ServeClient client(
        [&tcp] { return connect_tcp(tcp.host(), tcp.port()); },
        resilient_policy(/*jitter_seed=*/60, /*timeout_ms=*/1000));
    for (int r = 0; r < rounds; ++r) {
      const EstimateResponse response =
          client.estimate(chaos_request(100 + static_cast<std::uint64_t>(r)));
      ASSERT_TRUE(response.ok) << response.error;
      const std::size_t i = static_cast<std::size_t>(r);
      EXPECT_EQ(response.estimate.zero_counts, expected[i].zero_counts);
      EXPECT_EQ(response.estimate.estimated_betti,
                expected[i].estimated_betti);
    }
  }
  server.stop();
  EXPECT_GT(chaotic.stats().total(), 0u);
}

}  // namespace
}  // namespace qtda
