// Tests for quantum/mixed_state.hpp.
#include "quantum/mixed_state.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "quantum/executor.hpp"
#include "quantum/gates.hpp"

namespace qtda {
namespace {

TEST(MixedState, SizeMismatchThrows) {
  Circuit c(3);
  EXPECT_THROW(append_mixed_state_preparation(c, {0, 1}, {2}), Error);
}

TEST(MixedState, ProducesBellPairsPerQubit) {
  // One ancilla/system pair → Bell state: marginal on the system is I/2.
  Circuit c(2);
  append_mixed_state_preparation(c, {0}, {1});
  const auto state = run_circuit(c);
  EXPECT_NEAR(state.probability(0b00), 0.5, 1e-12);
  EXPECT_NEAR(state.probability(0b11), 0.5, 1e-12);
  EXPECT_NEAR(state.probability(0b01), 0.0, 1e-12);
  EXPECT_NEAR(state.probability(0b10), 0.0, 1e-12);
}

class MixedStateMarginal : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MixedStateMarginal, SystemMarginalIsUniform) {
  // Tracing out the ancillas must leave I/2^q on the system register.
  const std::size_t q = GetParam();
  Circuit c(2 * q);
  std::vector<std::size_t> ancillas(q), systems(q);
  for (std::size_t i = 0; i < q; ++i) {
    ancillas[i] = i;
    systems[i] = q + i;
  }
  append_mixed_state_preparation(c, ancillas, systems);
  const auto state = run_circuit(c);
  const auto marginal = state.marginal_probabilities(systems);
  const double expected = 1.0 / static_cast<double>(1ULL << q);
  for (double p : marginal) EXPECT_NEAR(p, expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MixedStateMarginal,
                         ::testing::Values(1, 2, 3, 4));

TEST(MixedState, SystemMeasurementsAreClassicallyCorrelatedWithAncillas) {
  // After the purification, ancilla and system registers are perfectly
  // correlated in the computational basis.
  const std::size_t q = 3;
  Circuit c(2 * q);
  std::vector<std::size_t> ancillas{0, 1, 2}, systems{3, 4, 5};
  append_mixed_state_preparation(c, ancillas, systems);
  const auto state = run_circuit(c);
  const auto joint = state.probabilities();
  for (std::uint64_t idx = 0; idx < joint.size(); ++idx) {
    const std::uint64_t ancilla_bits = idx >> q;
    const std::uint64_t system_bits = idx & ((1ULL << q) - 1);
    if (ancilla_bits != system_bits) {
      EXPECT_NEAR(joint[idx], 0.0, 1e-12);
    } else {
      EXPECT_NEAR(joint[idx], 1.0 / 8.0, 1e-12);
    }
  }
}

TEST(MixedState, CommutesWithLaterSystemUnitary) {
  // Applying a unitary to the maximally mixed system keeps the marginal
  // uniform (UρU† = ρ for ρ ∝ I) — the property the estimator relies on.
  const std::size_t q = 2;
  Circuit c(2 * q);
  append_mixed_state_preparation(c, {0, 1}, {2, 3});
  c.h(2);
  c.t(3);
  c.cnot(2, 3);
  const auto state = run_circuit(c);
  const auto marginal = state.marginal_probabilities({2, 3});
  for (double p : marginal) EXPECT_NEAR(p, 0.25, 1e-12);
}

}  // namespace
}  // namespace qtda
