// Property tests for the sparse-oracle QPE path: kCircuitSparse must
// reproduce the dense kCircuitExact backend — at the level of the full QPE
// outcome distribution and of the resulting Betti estimates — on random
// complexes, without ever forming a dense oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "core/betti_estimator.hpp"
#include "quantum/executor.hpp"
#include "topology/betti.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

namespace qtda {
namespace {

SimplicialComplex sample_complex(std::uint64_t seed, std::size_t vertices) {
  Rng rng(seed * 6151 + 11);
  RandomComplexOptions options;
  options.num_vertices = vertices;
  options.max_dimension = 2;
  for (;;) {
    const auto complex = random_flag_complex(options, rng);
    if (complex.count(1) > 0) return complex;
  }
}

class SparseOracleProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SparseOracleProperty, QpeDistributionMatchesDenseOracle) {
  const auto complex = sample_complex(GetParam(), 8);
  const RealMatrix laplacian = combinatorial_laplacian(complex, 1);

  EstimatorOptions options;
  options.precision_qubits = 3;
  options.delta = 6.0;
  options.backend = EstimatorBackend::kCircuitExact;
  const Circuit dense_circuit = build_qtda_circuit(laplacian, options);
  options.backend = EstimatorBackend::kCircuitSparse;
  const Circuit sparse_circuit = build_qtda_circuit(laplacian, options);
  ASSERT_EQ(dense_circuit.num_qubits(), sparse_circuit.num_qubits());

  // Same register, same purification prep, same network: the full
  // precision-register distributions must agree to solver precision.
  const Statevector dense_state = run_circuit(dense_circuit);
  const Statevector sparse_state = run_circuit(sparse_circuit);
  const std::vector<std::size_t> measured = {0, 1, 2};
  const auto dense_marginal = dense_state.marginal_probabilities(measured);
  const auto sparse_marginal = sparse_state.marginal_probabilities(measured);
  ASSERT_EQ(dense_marginal.size(), sparse_marginal.size());
  for (std::size_t m = 0; m < dense_marginal.size(); ++m)
    EXPECT_NEAR(dense_marginal[m], sparse_marginal[m], 1e-9)
        << "outcome " << m;
}

TEST_P(SparseOracleProperty, BettiEstimateMatchesExactBackend) {
  const auto complex = sample_complex(GetParam(), 8);

  EstimatorOptions exact;
  exact.backend = EstimatorBackend::kCircuitExact;
  exact.precision_qubits = 4;
  exact.shots = 20000;
  exact.seed = GetParam();
  EstimatorOptions sparse = exact;
  sparse.backend = EstimatorBackend::kCircuitSparse;

  for (auto mode :
       {MixedStateMode::kPurification, MixedStateMode::kSampledBasis}) {
    exact.mixed_state = sparse.mixed_state = mode;
    const BettiEstimate e = estimate_betti(complex, 1, exact);
    const BettiEstimate s = estimate_betti(complex, 1, sparse);
    // Same analytic reference and — because the Chebyshev action reproduces
    // the dense unitary to ~1e-12 — the same multinomial draws.
    EXPECT_NEAR(e.exact_zero_probability, s.exact_zero_probability, 1e-9);
    EXPECT_NEAR(e.zero_probability, s.zero_probability, 0.02);
    EXPECT_NEAR(e.estimated_betti, s.estimated_betti,
                0.02 * static_cast<double>(std::uint64_t{1}
                                           << e.system_qubits));
    EXPECT_EQ(s.total_qubits, e.total_qubits);
    EXPECT_GT(s.circuit_gates, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseOracleProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SparseOracle, HighResourceEstimateMatchesClassicalBetti) {
  const auto complex = sample_complex(99, 7);
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.precision_qubits = 8;
  options.shots = 200000;
  options.mixed_state = MixedStateMode::kSampledBasis;
  const BettiEstimate estimate = estimate_betti(complex, 1, options);
  EXPECT_EQ(estimate.rounded_betti, betti_number(complex, 1));
}

TEST(SparseOracle, SparseEntryPointSkipsDenseReferenceWhenAsked) {
  const auto complex = sample_complex(3, 8);
  const SparseMatrix laplacian = sparse_combinatorial_laplacian(complex, 1);
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.precision_qubits = 3;
  options.shots = 2000;
  options.exact_reference_max_dim = 1;  // suppress the diagnostic eigensolve
  const BettiEstimate estimate =
      estimate_betti_from_sparse_laplacian(laplacian, options);
  EXPECT_DOUBLE_EQ(estimate.exact_zero_probability, 0.0);
  EXPECT_GT(estimate.shots, 0u);
}

TEST(SparseOracle, SparseEntryPointServesOtherBackends) {
  const auto complex = sample_complex(4, 7);
  const SparseMatrix laplacian = sparse_combinatorial_laplacian(complex, 1);
  EstimatorOptions options;  // defaults to kAnalytic
  options.precision_qubits = 8;
  options.shots = 100000;
  const BettiEstimate via_sparse =
      estimate_betti_from_sparse_laplacian(laplacian, options);
  const BettiEstimate via_dense =
      estimate_betti_from_laplacian(laplacian.to_dense(), options);
  EXPECT_EQ(via_sparse.zero_counts, via_dense.zero_counts);
}

}  // namespace
}  // namespace qtda
