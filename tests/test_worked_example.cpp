// Appendix A of the paper, reproduced end to end and pinned number by
// number: the complex (Eq. 13), boundary operators (Eq. 14–15), the
// Laplacian (Eq. 17), the padded operator (Eq. 18) with λ̃max = 6, the full
// 24-term Pauli decomposition (Eq. 19), and the final estimate β̃1 = 1.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "core/betti_estimator.hpp"
#include "core/padding.hpp"
#include "core/scaling.hpp"
#include "linalg/matrix_ops.hpp"
#include "quantum/pauli.hpp"
#include "topology/betti.hpp"
#include "topology/boundary.hpp"
#include "topology/laplacian.hpp"
#include "topology/rips.hpp"

namespace qtda {
namespace {

/// K from Eq. (13), built from its maximal simplices.
SimplicialComplex paper_complex() {
  return SimplicialComplex::from_simplices(
      {Simplex{1, 2, 3}, Simplex{3, 4}, Simplex{3, 5}, Simplex{4, 5}},
      /*close_downward=*/true);
}

/// The same complex produced by the geometric pipeline of Fig. 5: a point
/// cloud whose ε-graph is exactly the edge set of Eq. (13).
PointCloud paper_point_cloud() {
  // Coordinates chosen so that with ε = 1.3 exactly the six edges
  // {12,13,23,34,35,45} appear (1–2–3 clustered, 3–4–5 a wider triangle
  // with 4–5 close and 1,2 far from 4,5).
  return PointCloud({{0.0, 1.0},     // 1
                     {1.0, 1.4},     // 2
                     {0.9, 0.4},     // 3
                     {1.8, -0.3},    // 4
                     {0.9, -0.85}}); // 5
}

TEST(WorkedExample, ComplexMatchesEq13) {
  const auto complex = paper_complex();
  EXPECT_EQ(complex.count(0), 5u);
  EXPECT_EQ(complex.count(1), 6u);
  EXPECT_EQ(complex.count(2), 1u);
  EXPECT_EQ(complex.total_count(), 12u);
  // The six edges, in the column order of Eq. (14).
  const auto& edges = complex.simplices(1);
  EXPECT_EQ(edges[0], (Simplex{1, 2}));
  EXPECT_EQ(edges[1], (Simplex{1, 3}));
  EXPECT_EQ(edges[2], (Simplex{2, 3}));
  EXPECT_EQ(edges[3], (Simplex{3, 4}));
  EXPECT_EQ(edges[4], (Simplex{3, 5}));
  EXPECT_EQ(edges[5], (Simplex{4, 5}));
}

TEST(WorkedExample, GeometricPipelineReproducesTheEdgeSet) {
  // A point cloud whose ε-graph has exactly the six edges of Eq. (13)
  // (0-indexed).  Note: the paper's K leaves the 3-4-5 triangle hollow even
  // though all its edges are present, so K is *not* the flag complex of its
  // own graph — the Rips pipeline necessarily fills both 3-cliques.  We pin
  // the edge set here and keep the hollow-triangle complex (Eq. 13) as an
  // explicitly-constructed abstract complex above.
  const auto complex = rips_complex(paper_point_cloud(), 1.3, 2);
  EXPECT_EQ(complex.count(0), 5u);
  EXPECT_EQ(complex.count(1), 6u);
  const auto& edges = complex.simplices(1);
  EXPECT_EQ(edges[0], (Simplex{0, 1}));
  EXPECT_EQ(edges[1], (Simplex{0, 2}));
  EXPECT_EQ(edges[2], (Simplex{1, 2}));
  EXPECT_EQ(edges[3], (Simplex{2, 3}));
  EXPECT_EQ(edges[4], (Simplex{2, 4}));
  EXPECT_EQ(edges[5], (Simplex{3, 4}));
  // Flag expansion fills both triangles → contractible-with-no-loop shape.
  EXPECT_EQ(complex.count(2), 2u);
  EXPECT_EQ(betti_number(complex, 1), 0u);
}

TEST(WorkedExample, BoundaryOperatorsMatchEq14And15) {
  const auto complex = paper_complex();
  const auto d1 = boundary_operator(complex, 1).to_dense();
  // Paper's Eq. (14) — the global negation of the standard orientation
  // (see boundary.hpp); Δ is identical either way.
  const RealMatrix eq14{{1, 1, 0, 0, 0, 0},   {-1, 0, 1, 0, 0, 0},
                        {0, -1, -1, 1, 1, 0}, {0, 0, 0, -1, 0, 1},
                        {0, 0, 0, 0, -1, -1}};
  EXPECT_LT(max_abs_diff(scale(d1, -1.0), eq14), 1e-15);

  const auto d2 = boundary_operator(complex, 2).to_dense();
  const RealMatrix eq15{{1}, {-1}, {1}, {0}, {0}, {0}};
  EXPECT_LT(max_abs_diff(d2, eq15), 1e-15);
}

TEST(WorkedExample, LaplacianMatchesEq17) {
  const auto complex = paper_complex();
  const auto laplacian = combinatorial_laplacian(complex, 1);
  const RealMatrix eq17{{3, 0, 0, 0, 0, 0},  {0, 3, 0, -1, -1, 0},
                        {0, 0, 3, -1, -1, 0}, {0, -1, -1, 2, 1, -1},
                        {0, -1, -1, 1, 2, 1}, {0, 0, 0, -1, 1, 2}};
  EXPECT_LT(max_abs_diff(laplacian, eq17), 1e-12);
}

TEST(WorkedExample, ClassicalBettiNumbers) {
  const auto complex = paper_complex();
  EXPECT_EQ(betti_number(complex, 0), 1u);
  EXPECT_EQ(betti_number(complex, 1), 1u);  // the hollow 3-4-5 triangle
  EXPECT_EQ(betti_number(complex, 2), 0u);
  EXPECT_EQ(betti_number_via_laplacian(complex, 1), 1u);
}

TEST(WorkedExample, PaddedLaplacianMatchesEq18) {
  const auto complex = paper_complex();
  const auto padded = pad_laplacian(combinatorial_laplacian(complex, 1));
  EXPECT_EQ(padded.num_qubits, 3u);
  EXPECT_DOUBLE_EQ(padded.lambda_max, 6.0);
  const RealMatrix eq18{{3, 0, 0, 0, 0, 0, 0, 0},  {0, 3, 0, -1, -1, 0, 0, 0},
                        {0, 0, 3, -1, -1, 0, 0, 0}, {0, -1, -1, 2, 1, -1, 0, 0},
                        {0, -1, -1, 1, 2, 1, 0, 0}, {0, 0, 0, -1, 1, 2, 0, 0},
                        {0, 0, 0, 0, 0, 0, 3, 0},  {0, 0, 0, 0, 0, 0, 0, 3}};
  EXPECT_LT(max_abs_diff(padded.matrix, eq18), 1e-12);
}

TEST(WorkedExample, PauliDecompositionMatchesEq19) {
  // δ = λ̃max = 6 → H = Δ̃ (Eq. 18); its Pauli expansion is Eq. (19).
  const auto complex = paper_complex();
  const auto padded = pad_laplacian(combinatorial_laplacian(complex, 1));
  const auto scaled = rescale_laplacian(padded, 6.0);
  const auto sum = pauli_decompose(scaled.matrix);

  const std::map<std::string, double> eq19{
      {"XXI", -0.5},   {"YYI", -0.5},   {"ZIX", -0.5},   {"IXI", -0.25},
      {"XIX", -0.25},  {"XYY", -0.25},  {"XZX", -0.25},  {"YIY", -0.25},
      {"YZY", -0.25},  {"ZXI", -0.25},  {"IZI", -0.125}, {"IZZ", -0.125},
      {"ZZZ", -0.125}, {"IIZ", 0.125},  {"ZII", 0.125},  {"ZIZ", 0.125},
      {"IXZ", 0.25},   {"XXX", 0.25},   {"YXY", 0.25},   {"YYX", 0.25},
      {"ZXZ", 0.25},   {"ZZI", 0.375},  {"IZX", 0.5},    {"III", 2.625}};

  EXPECT_EQ(sum.size(), eq19.size());
  for (const auto& [letters, coefficient] : eq19) {
    EXPECT_NEAR(sum.coefficient_of(letters), coefficient, 1e-12)
        << "term " << letters;
  }
}

TEST(WorkedExample, QuantumEstimateWithPaperParameters) {
  // 3 precision qubits, 1000 shots (the paper measured p(0) = 0.149,
  // β̃1 = 1.192 → rounds to 1).  Shot noise makes the exact count seed-
  // dependent; the rounded Betti number must be 1 and p(0) close to the
  // paper's value.
  const auto complex = paper_complex();
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitExact;
  options.precision_qubits = 3;
  options.shots = 1000;
  options.delta = 6.0;
  options.seed = 2023;
  const auto estimate = estimate_betti(complex, 1, options);
  EXPECT_EQ(estimate.system_qubits, 3u);
  EXPECT_EQ(estimate.precision_qubits, 3u);
  EXPECT_EQ(estimate.total_qubits, 9u);  // 3 + 3 + 3 ancillas (Fig. 6)
  EXPECT_NEAR(estimate.zero_probability, estimate.exact_zero_probability,
              0.04);
  EXPECT_EQ(estimate.rounded_betti, 1u);
  // The paper's measured value 0.149 should be within shot noise of the
  // exact probability our simulation computes.
  EXPECT_NEAR(estimate.exact_zero_probability, 0.149, 0.03);
}

TEST(WorkedExample, AnalyticBackendAgreesWithPaper) {
  const auto complex = paper_complex();
  EstimatorOptions options;
  options.backend = EstimatorBackend::kAnalytic;
  options.precision_qubits = 3;
  options.shots = 1000000;
  options.delta = 6.0;
  const auto estimate = estimate_betti(complex, 1, options);
  EXPECT_NEAR(estimate.estimated_betti,
              8.0 * estimate.exact_zero_probability, 0.02);
  EXPECT_EQ(estimate.rounded_betti, 1u);
}

TEST(WorkedExample, TrotterizedCircuitReproducesEstimate) {
  // The paper's Fig. 7 route: Pauli decomposition → Trotter circuit.
  // H's terms do not all commute, so use a few Strang steps.
  const auto complex = paper_complex();
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitTrotter;
  options.precision_qubits = 3;
  options.shots = 4000;
  options.delta = 6.0;
  options.trotter = {16, 2};
  const auto estimate = estimate_betti(complex, 1, options);
  EXPECT_EQ(estimate.rounded_betti, 1u);
  EXPECT_NEAR(estimate.zero_probability, estimate.exact_zero_probability,
              0.05);
}

}  // namespace
}  // namespace qtda
