// Tests for quantum/pauli.hpp.
#include "quantum/pauli.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "linalg/matrix_ops.hpp"
#include "quantum/gates.hpp"

namespace qtda {
namespace {

RealMatrix random_symmetric(std::size_t n, Rng& rng) {
  RealMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = rng.uniform(-2.0, 2.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

TEST(PauliString, ParseAndPrint) {
  PauliString p("ZIXY");
  EXPECT_EQ(p.num_qubits(), 4u);
  EXPECT_EQ(p.kind(0), PauliKind::Z);
  EXPECT_EQ(p.kind(1), PauliKind::I);
  EXPECT_EQ(p.kind(2), PauliKind::X);
  EXPECT_EQ(p.kind(3), PauliKind::Y);
  EXPECT_EQ(p.to_string(), "ZIXY");
  EXPECT_EQ(p.weight(), 3u);
  EXPECT_THROW(PauliString("AB"), Error);
  EXPECT_THROW(PauliString(""), Error);
}

TEST(PauliString, IdentityDetection) {
  EXPECT_TRUE(PauliString("III").is_identity());
  EXPECT_FALSE(PauliString("IXI").is_identity());
}

TEST(PauliString, MatrixMatchesKroneckerProducts) {
  // "XZ" must equal X ⊗ Z under the MSB-first convention.
  const auto xz = PauliString("XZ").matrix();
  const auto reference = kronecker(gates::X(), gates::Z());
  EXPECT_LT(max_abs_diff(xz, reference), 1e-15);

  const auto yxi = PauliString("YXI").matrix();
  const auto ref3 =
      kronecker(gates::Y(), kronecker(gates::X(), gates::I()));
  EXPECT_LT(max_abs_diff(yxi, ref3), 1e-15);
}

TEST(PauliString, FlipMaskAndPhaseReconstructMatrix) {
  // The sparse application (flip_mask + phase_for) must agree with the
  // dense matrix on every basis state.
  for (const char* letters : {"X", "Y", "Z", "XY", "ZY", "YXZ", "IYI"}) {
    PauliString p(letters);
    const auto m = p.matrix();
    const std::uint64_t dim = 1ULL << p.num_qubits();
    for (std::uint64_t ket = 0; ket < dim; ++ket) {
      const std::uint64_t bra = ket ^ p.flip_mask();
      for (std::uint64_t row = 0; row < dim; ++row) {
        const auto expected =
            row == bra ? p.phase_for(ket) : std::complex<double>{};
        EXPECT_NEAR(std::abs(m(row, ket) - expected), 0.0, 1e-15)
            << letters << " ket=" << ket << " row=" << row;
      }
    }
  }
}

TEST(PauliString, PauliMatricesAreInvolutions) {
  for (const char* letters : {"X", "ZZ", "XYZ"}) {
    const auto m = PauliString(letters).matrix();
    const auto m2 = matmul(m, m);
    EXPECT_LT(max_abs_diff(m2, ComplexMatrix::identity(m.rows())), 1e-12);
  }
}

TEST(PauliSum, MatrixOfWeightedSum) {
  // 0.5·X + 2·Z = [[2, 0.5], [0.5, −2]].
  PauliSum sum({{0.5, PauliString("X")}, {2.0, PauliString("Z")}});
  const auto m = sum.matrix();
  EXPECT_NEAR(m(0, 0).real(), 2.0, 1e-15);
  EXPECT_NEAR(m(0, 1).real(), 0.5, 1e-15);
  EXPECT_NEAR(m(1, 0).real(), 0.5, 1e-15);
  EXPECT_NEAR(m(1, 1).real(), -2.0, 1e-15);
}

TEST(PauliSum, CoefficientLookup) {
  PauliSum sum({{1.5, PauliString("XI")}, {-0.25, PauliString("ZZ")}});
  EXPECT_DOUBLE_EQ(sum.coefficient_of("XI"), 1.5);
  EXPECT_DOUBLE_EQ(sum.coefficient_of("ZZ"), -0.25);
  EXPECT_DOUBLE_EQ(sum.coefficient_of("YY"), 0.0);
}

TEST(PauliDecompose, SingleQubitKnownDecompositions) {
  // H = [[a+d, b], [b, a−d]] decomposes with aI + bX + dZ.
  RealMatrix h{{3.0, 0.5}, {0.5, 1.0}};
  const auto sum = pauli_decompose(h);
  EXPECT_NEAR(sum.coefficient_of("I"), 2.0, 1e-12);
  EXPECT_NEAR(sum.coefficient_of("X"), 0.5, 1e-12);
  EXPECT_NEAR(sum.coefficient_of("Z"), 1.0, 1e-12);
  EXPECT_NEAR(sum.coefficient_of("Y"), 0.0, 1e-12);
}

TEST(PauliDecompose, ComplexHermitianUsesY) {
  ComplexMatrix h(2, 2);
  h(0, 1) = {0.0, -1.0};
  h(1, 0) = {0.0, 1.0};  // = Y
  const auto sum = pauli_decompose(h);
  EXPECT_NEAR(sum.coefficient_of("Y"), 1.0, 1e-12);
  EXPECT_EQ(sum.size(), 1u);
}

class DecomposeRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DecomposeRoundTrip, SumMatrixEqualsInput) {
  Rng rng(GetParam() * 3 + 1);
  const std::size_t n = GetParam();
  const auto h = random_symmetric(std::size_t{1} << n, rng);
  const auto sum = pauli_decompose(h);
  const auto reconstructed = sum.matrix();
  EXPECT_LT(max_abs_diff(reconstructed, to_complex(h)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Qubits, DecomposeRoundTrip,
                         ::testing::Values(1, 2, 3, 4));

TEST(PauliDecompose, IdentityCoefficientIsTraceOverDim) {
  Rng rng(17);
  const auto h = random_symmetric(8, rng);
  const auto sum = pauli_decompose(h);
  EXPECT_NEAR(sum.coefficient_of("III"), trace(h) / 8.0, 1e-12);
}

TEST(PauliDecompose, RequiresPowerOfTwo) {
  EXPECT_THROW(pauli_decompose(RealMatrix::identity(3)), Error);
  EXPECT_THROW(pauli_decompose(RealMatrix::identity(6)), Error);
}

TEST(PauliDecompose, RequiresHermitian) {
  RealMatrix a{{0.0, 1.0}, {0.0, 0.0}};
  EXPECT_THROW(pauli_decompose(a), Error);
}

TEST(PauliDecompose, ToleranceDropsSmallTerms) {
  RealMatrix h{{1.0, 1e-14}, {1e-14, 1.0}};
  const auto sum = pauli_decompose(h, 1e-10);
  EXPECT_EQ(sum.size(), 1u);  // only the identity survives
  EXPECT_NEAR(sum.coefficient_of("I"), 1.0, 1e-12);
}

TEST(PauliSum, SortedIsDeterministic) {
  PauliSum sum({{1.0, PauliString("ZI")}, {2.0, PauliString("IX")}});
  const auto sorted = sum.sorted();
  EXPECT_EQ(sorted.terms()[0].string.to_string(), "IX");
  EXPECT_EQ(sorted.terms()[1].string.to_string(), "ZI");
}

namespace {

/// Random sparse symmetric matrix with ~density fraction of nonzero pairs.
SparseMatrix random_sparse_symmetric(std::size_t n, double density,
                                     Rng& rng) {
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, rng.uniform(-2.0, 2.0)});
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() > density) continue;
      const double v = rng.uniform(-1.0, 1.0);
      triplets.push_back({i, j, v});
      triplets.push_back({j, i, v});
    }
  }
  return SparseMatrix::from_triplets(n, n, std::move(triplets));
}

}  // namespace

TEST(SparsePauliDecompose, MatchesDenseOnRandomMatrices) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const std::size_t dim = seed % 2 == 0 ? 8 : 16;
    const SparseMatrix sparse = random_sparse_symmetric(dim, 0.3, rng);
    const PauliSum from_sparse = pauli_decompose(sparse);
    const PauliSum from_dense = pauli_decompose(sparse.to_dense());
    ASSERT_EQ(from_sparse.size(), from_dense.size()) << "seed " << seed;
    for (std::size_t t = 0; t < from_sparse.size(); ++t) {
      // Same strings in the same (base-4 enumeration) order, coefficients
      // equal up to summation rounding.
      EXPECT_EQ(from_sparse.terms()[t].string.to_string(),
                from_dense.terms()[t].string.to_string())
          << "seed " << seed << " term " << t;
      EXPECT_NEAR(from_sparse.terms()[t].coefficient,
                  from_dense.terms()[t].coefficient, 1e-12)
          << "seed " << seed << " term " << t;
    }
  }
}

TEST(SparsePauliDecompose, ReconstructsTheMatrix) {
  Rng rng(11);
  const SparseMatrix sparse = random_sparse_symmetric(8, 0.4, rng);
  const PauliSum sum = pauli_decompose(sparse);
  EXPECT_LT(max_abs_diff(sum.matrix(), to_complex(sparse.to_dense())), 1e-9);
}

TEST(SparsePauliDecompose, SkipsAbsentFlipPatterns) {
  // A diagonal matrix has a single flip pattern (f = 0): only I/Z strings
  // may appear, all 2^n of them reachable by one Walsh–Hadamard transform.
  const SparseMatrix diagonal = SparseMatrix::from_triplets(
      8, 8, {{0, 0, 1.0}, {3, 3, 2.0}, {5, 5, -1.0}});
  const PauliSum sum = pauli_decompose(diagonal);
  for (const PauliTerm& term : sum.terms()) {
    for (PauliKind kind : term.string.kinds()) {
      EXPECT_TRUE(kind == PauliKind::I || kind == PauliKind::Z)
          << term.string.to_string();
    }
  }
}

TEST(SparsePauliDecompose, RejectsBadInput) {
  EXPECT_THROW(pauli_decompose(SparseMatrix(3, 3)), Error);  // not a power of 2
  EXPECT_THROW(pauli_decompose(SparseMatrix(4, 2)), Error);  // not square
  const SparseMatrix asym =
      SparseMatrix::from_triplets(4, 4, {{0, 1, 1.0}});  // not symmetric
  EXPECT_THROW(pauli_decompose(asym), Error);
}

}  // namespace
}  // namespace qtda
