// Tests for topology/laplacian.hpp and topology/betti.hpp.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "linalg/matrix_ops.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "topology/betti.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"
#include "topology/rips.hpp"

namespace qtda {
namespace {

SimplicialComplex circle(std::size_t n) {
  // Cycle graph C_n as a 1-dimensional complex (a topological circle).
  std::vector<Simplex> simplices;
  for (VertexId i = 0; i < n; ++i)
    simplices.push_back(Simplex{i, static_cast<VertexId>((i + 1) % n)});
  return SimplicialComplex::from_simplices(simplices, true);
}

SimplicialComplex octahedron_sphere() {
  // The boundary of the octahedron: a triangulated 2-sphere.
  // Vertices 0/1 are poles, 2–5 the equator square.
  std::vector<Simplex> simplices;
  const VertexId equator[4] = {2, 3, 4, 5};
  for (int i = 0; i < 4; ++i) {
    const VertexId a = equator[i];
    const VertexId b = equator[(i + 1) % 4];
    simplices.push_back(Simplex{0, a, b});
    simplices.push_back(Simplex{1, a, b});
  }
  return SimplicialComplex::from_simplices(simplices, true);
}

TEST(Betti, CircleHasOneLoop) {
  const auto complex = circle(8);
  EXPECT_EQ(betti_number(complex, 0), 1u);
  EXPECT_EQ(betti_number(complex, 1), 1u);
}

TEST(Betti, TwoComponents) {
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{0, 1}, Simplex{2, 3}}, true);
  EXPECT_EQ(betti_number(complex, 0), 2u);
  EXPECT_EQ(betti_number(complex, 1), 0u);
}

TEST(Betti, FilledTriangleIsContractible) {
  const auto complex =
      SimplicialComplex::from_simplices({Simplex{0, 1, 2}}, true);
  EXPECT_EQ(betti_number(complex, 0), 1u);
  EXPECT_EQ(betti_number(complex, 1), 0u);
  EXPECT_EQ(betti_number(complex, 2), 0u);
}

TEST(Betti, SphereHasTwoDimensionalHole) {
  const auto sphere = octahedron_sphere();
  EXPECT_EQ(betti_number(sphere, 0), 1u);
  EXPECT_EQ(betti_number(sphere, 1), 0u);
  EXPECT_EQ(betti_number(sphere, 2), 1u);
}

TEST(Betti, WedgeOfTwoCircles) {
  // Two triangles sharing vertex 0: β0 = 1, β1 = 2.
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{0, 1}, Simplex{1, 2}, Simplex{0, 2}, Simplex{0, 3},
       Simplex{3, 4}, Simplex{0, 4}},
      true);
  EXPECT_EQ(betti_number(complex, 0), 1u);
  EXPECT_EQ(betti_number(complex, 1), 2u);
}

TEST(Betti, IsolatedVerticesCountComponents) {
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{0}, Simplex{1}, Simplex{2}}, false);
  EXPECT_EQ(betti_number(complex, 0), 3u);
}

TEST(Betti, EmptyDimensionIsZero) {
  const auto complex =
      SimplicialComplex::from_simplices({Simplex{0}}, false);
  EXPECT_EQ(betti_number(complex, 1), 0u);
  EXPECT_EQ(betti_number(complex, 5), 0u);
}

TEST(Laplacian, IsSymmetricPositiveSemidefinite) {
  Rng rng(5);
  RandomComplexOptions options;
  options.num_vertices = 8;
  options.max_dimension = 2;
  const auto complex = random_flag_complex(options, rng);
  for (int k = 0; k <= 1; ++k) {
    if (complex.count(k) == 0) continue;
    const auto laplacian = combinatorial_laplacian(complex, k);
    EXPECT_TRUE(is_symmetric(laplacian, 1e-12));
    const auto values = symmetric_eigenvalues(laplacian);
    for (double v : values) EXPECT_GE(v, -1e-9);
  }
}

TEST(Laplacian, DownPlusUpDecomposition) {
  const auto complex = circle(5);
  const auto down = down_laplacian(complex, 1);
  const auto up = up_laplacian(complex, 1);
  const auto full = combinatorial_laplacian(complex, 1);
  EXPECT_LT(max_abs_diff(add(down, up), full), 1e-12);
}

TEST(Laplacian, Degree0LaplacianIsGraphLaplacian) {
  // Δ_0 = ∂1·∂1ᵀ is the graph Laplacian: degree on the diagonal, −1 for
  // edges.
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{0, 1}, Simplex{1, 2}}, true);
  const auto l0 = combinatorial_laplacian(complex, 0);
  EXPECT_DOUBLE_EQ(l0(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(l0(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(l0(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(l0(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(l0(0, 2), 0.0);
}

class BettiCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BettiCrossCheck, RankAndLaplacianRoutesAgree) {
  Rng rng(GetParam() * 7 + 1);
  RandomComplexOptions options;
  options.num_vertices = 9;
  options.max_dimension = 3;
  const auto complex = random_flag_complex(options, rng);
  for (int k = 0; k <= 2; ++k) {
    if (complex.count(k) == 0) continue;
    EXPECT_EQ(betti_number(complex, k),
              betti_number_via_laplacian(complex, k))
        << "k=" << k << " seed=" << GetParam();
  }
}

TEST_P(BettiCrossCheck, EulerCharacteristicMatchesAlternatingBetti) {
  // χ = Σ (−1)^k β_k holds when the complex's top dimension is included.
  Rng rng(GetParam() * 11 + 3);
  RandomComplexOptions options;
  options.num_vertices = 7;
  options.max_dimension = 6;  // full clique expansion: no truncation
  const auto complex = random_flag_complex(options, rng);
  long long alternating = 0;
  for (int k = 0; k <= complex.max_dimension(); ++k) {
    const auto term = static_cast<long long>(betti_number(complex, k));
    alternating += (k % 2 == 0) ? term : -term;
  }
  EXPECT_EQ(alternating, complex.euler_characteristic());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BettiCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Betti, BatchMatchesIndividual) {
  const auto complex = circle(6);
  const auto all = betti_numbers(complex, 2);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], betti_number(complex, 0));
  EXPECT_EQ(all[1], betti_number(complex, 1));
  EXPECT_EQ(all[2], betti_number(complex, 2));
}

TEST(Betti, RipsCircleFromPointCloud) {
  // Points on a circle of radius 1; small ε links neighbours only.
  std::vector<std::vector<double>> points;
  const std::size_t n = 12;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * static_cast<double>(i) /
                         static_cast<double>(n);
    points.push_back({std::cos(angle), std::sin(angle)});
  }
  PointCloud cloud(points);
  // Chord to the nearest neighbour is 2·sin(π/12) ≈ 0.5176.
  const auto complex = rips_complex(cloud, 0.6, 2);
  EXPECT_EQ(betti_number(complex, 0), 1u);
  EXPECT_EQ(betti_number(complex, 1), 1u);
}

}  // namespace
}  // namespace qtda
