/// \file test_telemetry.cpp
/// \brief Telemetry spine: histogram bucketing and deterministic merges,
/// counter concurrency, span-tree tracing, metrics exposition round-trips
/// (JSON and the serve verb), and the invariant that enabling telemetry
/// does not perturb the bit-identity fingerprints.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bit_identity_scenarios.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "serve/client.hpp"
#include "serve/metrics.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"

namespace qtda {
namespace {

using telemetry::Histogram;
using telemetry::HistogramSnapshot;

/// Restores the disabled default on scope exit so tests cannot leak an
/// enabled registry into each other.
struct TelemetryGuard {
  ~TelemetryGuard() {
    telemetry::set_enabled(false);
    telemetry::registry().reset_values();
  }
};

TEST(TelemetryHistogram, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower_bound(v), v);
    EXPECT_EQ(Histogram::bucket_upper_bound(v), v);
  }
}

TEST(TelemetryHistogram, BucketBoundsRoundTrip) {
  // Every bucket's own bounds must map back to it, and consecutive buckets
  // must tile the integers without gaps or overlap.
  for (std::size_t index = 0; index + 1 < Histogram::kNumBuckets; ++index) {
    const std::uint64_t lower = Histogram::bucket_lower_bound(index);
    const std::uint64_t upper = Histogram::bucket_upper_bound(index);
    ASSERT_LE(lower, upper) << "bucket " << index;
    EXPECT_EQ(Histogram::bucket_index(lower), index);
    EXPECT_EQ(Histogram::bucket_index(upper), index);
    EXPECT_EQ(Histogram::bucket_lower_bound(index + 1), upper + 1)
        << "gap after bucket " << index;
  }
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX),
            Histogram::kNumBuckets - 1);
}

TEST(TelemetryHistogram, RelativeErrorBounded) {
  // Octave splitting into 8 sub-buckets caps the bucket width at 12.5% of
  // its lower bound — the quantile resolution contract.
  for (std::uint64_t v : {9ull, 100ull, 4096ull, 123456789ull,
                          (1ull << 40) + 17}) {
    const std::size_t index = Histogram::bucket_index(v);
    const double lower =
        static_cast<double>(Histogram::bucket_lower_bound(index));
    const double upper =
        static_cast<double>(Histogram::bucket_upper_bound(index));
    EXPECT_LE((upper - lower + 1.0) / lower, 0.125 + 1e-12) << v;
  }
}

TEST(TelemetryHistogram, MergeEqualsConcatenation) {
  const std::vector<std::uint64_t> samples = {0,   1,    7,     8,     9,
                                              63,  64,   100,   1000,  4095,
                                              4096, 65537, 1 << 20, 123456789};
  Histogram left, right, all;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i % 2 == 0 ? left : right).record(samples[i]);
    all.record(samples[i]);
  }
  HistogramSnapshot merged = left.snapshot();
  merged.merge(right.snapshot());
  const HistogramSnapshot expected = all.snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.buckets, expected.buckets);
}

TEST(TelemetryHistogram, QuantilesBracketTheData) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramSnapshot snapshot = h.snapshot();
  EXPECT_EQ(snapshot.count, 1000u);
  // Bucket resolution is 12.5%: quantiles land within that of the exact
  // order statistic.
  EXPECT_NEAR(snapshot.quantile(0.5), 500.0, 0.125 * 500.0);
  EXPECT_NEAR(snapshot.quantile(0.99), 990.0, 0.125 * 990.0);
  EXPECT_GE(snapshot.quantile(1.0), snapshot.quantile(0.5));
  EXPECT_NEAR(snapshot.mean(), 500.5, 0.5);
  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);
}

TEST(TelemetryCounter, ConcurrentHammerLosesNothing) {
  telemetry::Counter& counter =
      telemetry::registry().counter("test.hammer");
  counter.reset();
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kAddsPerTask = 10000;
  ThreadPool::shared().run_batch(kTasks, [&](std::size_t) {
    for (std::size_t i = 0; i < kAddsPerTask; ++i) counter.add();
  });
  EXPECT_EQ(counter.value(), kTasks * kAddsPerTask);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(TelemetrySpan, DisabledSpansRecordNothing) {
  TelemetryGuard guard;
  telemetry::set_enabled(false);
  telemetry::Histogram& h =
      telemetry::registry().histogram("span.zero_cost");
  const std::uint64_t before = h.snapshot().count;
  { QTDA_SPAN("zero_cost"); }
  EXPECT_EQ(h.snapshot().count, before);
  telemetry::set_enabled(true);
  { QTDA_SPAN("zero_cost"); }
  EXPECT_EQ(h.snapshot().count, before + 1);
}

TEST(TelemetrySpan, TraceCapturesNesting) {
  TelemetryGuard guard;
  telemetry::set_enabled(true);
  telemetry::start_trace();
  {
    QTDA_SPAN("outer");
    {
      QTDA_SPAN("inner");
    }
  }
  const std::vector<telemetry::TraceEvent> events = telemetry::stop_trace();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: the outer span opened first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].duration_ns, events[0].duration_ns);

  const std::string json = telemetry::chrome_trace_json(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// Regression test for a data race: Span destructors append to their
// thread-local ThreadTrace::events while a concurrent stop_trace() on
// another thread drains those same vectors.  Before the per-trace lock the
// push and the drain touched one std::vector unsynchronized (TSan reported
// the pair; a realloc mid-drain could tear the collected events).  The
// assertions are deliberately weak — spans racing a stop may be dropped —
// the test's job is giving TSan the interleaving.
TEST(TelemetrySpan, ConcurrentStopTraceIsRaceFree) {
  TelemetryGuard guard;
  telemetry::set_enabled(true);
  telemetry::start_trace();

  std::atomic<bool> stop{false};
  std::atomic<int> started{0};
  std::vector<std::thread> spanners;
  for (int t = 0; t < 4; ++t) {
    spanners.emplace_back([&stop, &started] {
      bool first = true;
      while (!stop.load(std::memory_order_relaxed)) {
        {
          QTDA_SPAN("race.outer");
          QTDA_SPAN("race.inner");
        }
        if (first) {
          first = false;
          started.fetch_add(1);
        }
      }
    });
  }
  // Every spanner has recorded at least one span before the stop/start
  // rounds begin — without this the main loop can finish before the
  // threads are even scheduled and collect nothing.
  while (started.load() < 4) std::this_thread::yield();

  std::size_t collected = 0;
  for (int round = 0; round < 50; ++round) {
    for (const telemetry::TraceEvent& event : telemetry::stop_trace()) {
      EXPECT_TRUE(std::string(event.name).rfind("race.", 0) == 0);
      ++collected;
    }
    telemetry::start_trace();
  }

  stop.store(true);
  for (std::thread& spanner : spanners) spanner.join();
  const std::vector<telemetry::TraceEvent> rest = telemetry::stop_trace();
  collected += rest.size();
  EXPECT_GT(collected, 0u);
}

TEST(TelemetryMetrics, JsonRoundTrips) {
  MetricsReport report;
  report.counters["serve.admitted"] = 42;
  report.counters["compiler.gates_before"] = 1234567890123ull;
  report.gauges["serve.queue_depth"] = -3;
  HistogramSnapshot h;
  Histogram raw;
  raw.record(5);
  raw.record(100);
  raw.record(100000);
  h = raw.snapshot();
  report.histograms["serve.request_ns"] = h;

  const std::string json = render_metrics_json(report);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  const MetricsReport parsed = parse_metrics_json(json);
  EXPECT_EQ(parsed.counters, report.counters);
  EXPECT_EQ(parsed.gauges, report.gauges);
  ASSERT_EQ(parsed.histograms.size(), 1u);
  const HistogramSnapshot& round = parsed.histograms.at("serve.request_ns");
  EXPECT_EQ(round.count, h.count);
  EXPECT_EQ(round.sum, h.sum);
  EXPECT_EQ(round.buckets, h.buckets);

  EXPECT_THROW(parse_metrics_json("definitely not json"), Error);
}

TEST(TelemetryMetrics, PrometheusExposition) {
  MetricsReport report;
  report.counters["serve.admitted"] = 7;
  Histogram raw;
  raw.record(100);
  report.histograms["serve.request_ns"] = raw.snapshot();
  const std::string text = render_prometheus(report);
  EXPECT_NE(text.find("qtda_serve_admitted 7"), std::string::npos);
  EXPECT_NE(text.find("qtda_serve_request_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("# EOF"), std::string::npos);
}

TEST(TelemetryMetrics, ServeVerbRoundTrip) {
  TelemetryGuard guard;
  ServerOptions options;
  options.cache.budget_bytes = std::size_t{32} << 20;
  BettiServer server(options);  // options.telemetry enables collection
  LoopbackTransport transport;
  server.start(transport);
  ServeClient client(transport.connect());

  EstimateRequest request;
  for (int i = 0; i < 8; ++i) {
    const double angle = 6.283185307179586 * i / 8.0;
    request.points.push_back({std::cos(angle), std::sin(angle)});
  }
  request.epsilon = 1.0;
  request.k = 1;
  request.options.precision_qubits = 2;
  request.options.shots = 64;
  ASSERT_TRUE(client.estimate(request).ok);

  const MetricsReport metrics = client.metrics();
  EXPECT_GE(metrics.counters.at("serve.admitted"), 1u);
  EXPECT_GE(metrics.counters.at("serve.completed"), 1u);
  EXPECT_EQ(metrics.counters.at("cache.plan.misses"), 1u);
  ASSERT_TRUE(metrics.histograms.count("serve.request_ns"));
  EXPECT_GE(metrics.histograms.at("serve.request_ns").count, 1u);
  ASSERT_TRUE(metrics.histograms.count("span.evolve"));
  EXPECT_GE(metrics.histograms.at("span.evolve").count, 1u);

  const std::string prometheus = client.metrics_prometheus();
  EXPECT_NE(prometheus.find("qtda_serve_admitted"), std::string::npos);
  EXPECT_NE(prometheus.find("# EOF\n"), std::string::npos);

  // The scrape must not have corrupted request matching: a request after
  // the multi-line exposition still round-trips.
  EXPECT_TRUE(client.estimate(request).ok);
  client.shutdown();
  server.stop();
}

TEST(TelemetryInvariance, FingerprintsUnchangedWhenEnabled) {
  TelemetryGuard guard;
  telemetry::set_enabled(false);
  const auto baseline = testing::bit_identity_fingerprints();
  telemetry::set_enabled(true);
  const auto instrumented = testing::bit_identity_fingerprints();
  ASSERT_EQ(baseline.size(), instrumented.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].name, instrumented[i].name);
    EXPECT_EQ(baseline[i].hash, instrumented[i].hash)
        << "telemetry perturbed scenario " << baseline[i].name;
  }
}

TEST(Logging, LevelNamesParse) {
  EXPECT_EQ(log_level_from_name("debug"), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_name("info"), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_name("warn"), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_name("error"), LogLevel::kError);
  EXPECT_THROW(log_level_from_name("loud"), Error);
  EXPECT_THROW(log_level_from_name(""), Error);
}

}  // namespace
}  // namespace qtda
