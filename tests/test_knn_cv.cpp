// Tests for ml/knn.hpp and ml/cross_validation.hpp.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "ml/cross_validation.hpp"
#include "ml/knn.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/metrics.hpp"

namespace qtda {
namespace {

Dataset blobs(std::size_t per_class, double separation, Rng& rng) {
  Dataset data;
  for (std::size_t i = 0; i < per_class; ++i) {
    data.add({-separation + rng.normal(0.0, 0.5),
              -separation + rng.normal(0.0, 0.5)},
             0);
    data.add({separation + rng.normal(0.0, 0.5),
              separation + rng.normal(0.0, 0.5)},
             1);
  }
  return data;
}

TEST(Knn, NearestNeighbourOnExactPoints) {
  Dataset data;
  data.add({0.0, 0.0}, 0);
  data.add({1.0, 1.0}, 1);
  KnnClassifier knn(1);
  knn.fit(data);
  EXPECT_EQ(knn.predict({0.1, 0.1}), 0);
  EXPECT_EQ(knn.predict({0.9, 0.8}), 1);
}

TEST(Knn, MajorityVoteOverK) {
  Dataset data;
  data.add({0.0}, 0);
  data.add({0.2}, 0);
  data.add({0.4}, 1);
  KnnClassifier knn(3);
  knn.fit(data);
  // All three points vote; majority label is 0.
  EXPECT_EQ(knn.predict({0.1}), 0);
  EXPECT_NEAR(knn.predict_probability({0.1}), 1.0 / 3.0, 1e-12);
}

TEST(Knn, TieFallsBackToNearestNeighbour) {
  Dataset data;
  data.add({0.0}, 0);
  data.add({1.0}, 1);
  KnnClassifier knn(2);
  knn.fit(data);
  EXPECT_EQ(knn.predict({0.2}), 0);  // tie at k=2; nearest is label 0
  EXPECT_EQ(knn.predict({0.8}), 1);
}

TEST(Knn, KLargerThanDatasetUsesAll) {
  Dataset data;
  data.add({0.0}, 1);
  data.add({1.0}, 1);
  KnnClassifier knn(10);
  knn.fit(data);
  EXPECT_EQ(knn.predict({5.0}), 1);
}

TEST(Knn, SeparableBlobsClassifyPerfectly) {
  Rng rng(3);
  const Dataset data = blobs(40, 3.0, rng);
  KnnClassifier knn(5);
  knn.fit(data);
  EXPECT_DOUBLE_EQ(accuracy(data.labels, knn.predict_all(data.features)),
                   1.0);
}

TEST(Knn, Validation) {
  EXPECT_THROW(KnnClassifier(0), Error);
  KnnClassifier knn(3);
  EXPECT_THROW(knn.predict({1.0}), Error);  // not fitted
  Dataset data;
  data.add({1.0, 2.0}, 0);
  data.add({1.0, 3.0}, 1);
  knn.fit(data);
  EXPECT_THROW(knn.predict({1.0}), Error);  // width mismatch
}

TEST(CrossValidation, FoldsPartitionTheData) {
  Rng rng(5);
  const Dataset data = blobs(20, 2.0, rng);
  std::size_t total_validation = 0;
  const auto result = stratified_k_fold(
      data, 4,
      [&](const Dataset& train, const Dataset& validation) {
        total_validation += validation.size();
        EXPECT_EQ(train.size() + validation.size(), data.size());
        // Stratification: both classes present in both parts.
        EXPECT_GT(train.positive_count(), 0u);
        EXPECT_GT(validation.positive_count(), 0u);
        EXPECT_LT(train.positive_count(), train.size());
        EXPECT_LT(validation.positive_count(), validation.size());
        return 1.0;
      },
      rng);
  EXPECT_EQ(result.fold_scores.size(), 4u);
  EXPECT_EQ(total_validation, data.size());
  EXPECT_DOUBLE_EQ(result.mean_score, 1.0);
  EXPECT_DOUBLE_EQ(result.stddev_score, 0.0);
}

TEST(CrossValidation, SeparableDataScoresHigh) {
  Rng rng(7);
  const Dataset data = blobs(30, 3.0, rng);
  const auto result = stratified_k_fold(
      data, 5,
      [](const Dataset& train, const Dataset& validation) {
        LogisticRegression model;
        model.fit(train);
        return accuracy(validation.labels,
                        model.predict_all(validation.features));
      },
      rng);
  EXPECT_GT(result.mean_score, 0.95);
}

TEST(CrossValidation, KnnAndLogisticBothWork) {
  Rng rng(9);
  const Dataset data = blobs(25, 2.5, rng);
  const auto knn_result = stratified_k_fold(
      data, 5,
      [](const Dataset& train, const Dataset& validation) {
        KnnClassifier model(3);
        model.fit(train);
        return accuracy(validation.labels,
                        model.predict_all(validation.features));
      },
      rng);
  EXPECT_GT(knn_result.mean_score, 0.9);
}

TEST(CrossValidation, Validation) {
  Rng rng(11);
  Dataset tiny;
  tiny.add({0.0}, 0);
  tiny.add({1.0}, 1);
  const auto evaluator = [](const Dataset&, const Dataset&) { return 0.0; };
  EXPECT_THROW(stratified_k_fold(tiny, 1, evaluator, rng), Error);
  EXPECT_THROW(stratified_k_fold(tiny, 3, evaluator, rng), Error);
}

}  // namespace
}  // namespace qtda
