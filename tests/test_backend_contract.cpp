// Backend-contract conformance suite: every SimulatorKind must satisfy the
// same observable semantics through the SimulatorBackend interface — basis
// state preparation, named/dense/operator gate application, marginal and
// sampling invariants, and the channel semantics its exact_channels() flag
// advertises.  New engines get conformance coverage by appearing in the
// INSTANTIATE list; nothing else in this file names a concrete engine.
#include "quantum/backend.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <string>

#include "common/random.hpp"
#include "linalg/matrix_exp.hpp"
#include "quantum/density_matrix.hpp"
#include "quantum/noise.hpp"
#include "scoped_env.hpp"

namespace qtda {
namespace {

/// Random real symmetric matrix → random unitary e^{iH} of dimension 2^m.
ComplexMatrix random_unitary(std::size_t m, Rng& rng) {
  const std::size_t dim = std::size_t{1} << m;
  RealMatrix h(dim, dim);
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      h(i, j) = h(j, i) = rng.uniform() * 2.0 - 1.0;
  return unitary_exp(h);
}

/// A small circuit exercising named gates, controls and rotations.
Circuit named_gate_circuit() {
  Circuit c(3);
  c.h(0);
  c.cnot(0, 1);
  c.ry(2, 0.7);
  c.t(1);
  c.cz(1, 2);
  c.rz(0, -0.4);
  return c;
}

class BackendContract : public ::testing::TestWithParam<SimulatorKind> {
 protected:
  // The member guard saves the incoming QTDA_SIMULATOR/QTDA_SHARDS values
  // before the body clears them: this suite pins *which* engine it builds,
  // so the CI overrides must not redirect the factory here.
  BackendContract() { testing::ScopedSimulatorEnv::clear(); }

  std::unique_ptr<SimulatorBackend> make(std::size_t num_qubits) const {
    return make_simulator(GetParam(), num_qubits, /*shards=*/2);
  }

  // The float32 CI leg routes this whole suite through the narrow engines
  // via QTDA_PRECISION; probability-level assertions scale with the
  // amplitude scalar (~1e-7 relative error per float32 amplitude).
  static bool float32() {
    return precision_from_env() == Precision::kFloat32;
  }
  static double prob_tol() { return float32() ? 5e-6 : 1e-10; }
  static double tight_tol() { return float32() ? 1e-6 : 1e-12; }

 private:
  testing::ScopedSimulatorEnv restore_after_;
};

TEST_P(BackendContract, FactoryNameRoundTrip) {
  const auto backend = make(3);
  EXPECT_EQ(backend->name(), simulator_kind_name(GetParam()));
  EXPECT_EQ(backend->num_qubits(), 3u);
  EXPECT_EQ(simulator_kind_from_name(backend->name()), GetParam());
  EXPECT_NE(simulator_kind_names().find(backend->name()), std::string::npos);
}

TEST_P(BackendContract, BasisStatePreparation) {
  const auto backend = make(3);
  const std::vector<std::size_t> all{0, 1, 2};
  for (std::uint64_t index : {0u, 3u, 5u, 7u}) {
    backend->prepare_basis_state(index);
    const auto marginal = backend->marginal_probabilities(all);
    ASSERT_EQ(marginal.size(), 8u);
    for (std::uint64_t m = 0; m < marginal.size(); ++m)
      EXPECT_NEAR(marginal[m], m == index ? 1.0 : 0.0, 1e-12)
          << "prepared " << index << ", outcome " << m;
  }
}

TEST_P(BackendContract, NamedGatesMatchReferenceStatevector) {
  const Circuit circuit = named_gate_circuit();
  Statevector reference(3);
  reference.set_basis_state(5);
  reference.apply_circuit(circuit);

  const auto backend = make(3);
  backend->prepare_basis_state(5);
  backend->apply_circuit(circuit);
  const auto marginal = backend->marginal_probabilities({0, 1, 2});
  const auto expected = reference.probabilities();
  for (std::uint64_t m = 0; m < 8; ++m)
    EXPECT_NEAR(marginal[m], expected[m], prob_tol()) << "outcome " << m;
}

TEST_P(BackendContract, DenseGateOperatorGateAndApplyOperatorAgree) {
  // The same unitary routed three ways — dense kUnitary gate, kOperator
  // gate in a circuit, direct apply_operator call — must yield the same
  // distribution, including under a control.
  Rng rng(31);
  const ComplexMatrix u = random_unitary(2, rng);
  const auto op = std::make_shared<DenseOperator>(u);
  const std::vector<std::size_t> targets{1, 2};
  const std::vector<std::size_t> controls{0};

  Circuit prep(3);
  prep.h(0);
  prep.ry(1, 0.9);
  prep.rx(2, -1.1);

  Circuit dense(3);
  dense.unitary(u, targets, controls);
  Circuit matrix_free(3);
  matrix_free.operator_gate(op, targets, controls);

  const auto dense_backend = make(3);
  dense_backend->prepare_basis_state(0);
  dense_backend->apply_circuit(prep);
  dense_backend->apply_circuit(dense);

  const auto op_backend = make(3);
  op_backend->prepare_basis_state(0);
  op_backend->apply_circuit(prep);
  op_backend->apply_circuit(matrix_free);

  const auto direct_backend = make(3);
  direct_backend->prepare_basis_state(0);
  direct_backend->apply_circuit(prep);
  direct_backend->apply_operator(*op, targets, controls);

  const auto expected = dense_backend->marginal_probabilities({0, 1, 2});
  const auto via_gate = op_backend->marginal_probabilities({0, 1, 2});
  const auto via_direct = direct_backend->marginal_probabilities({0, 1, 2});
  for (std::uint64_t m = 0; m < 8; ++m) {
    EXPECT_NEAR(via_gate[m], expected[m], prob_tol()) << "outcome " << m;
    EXPECT_NEAR(via_direct[m], expected[m], prob_tol()) << "outcome " << m;
  }
}

TEST_P(BackendContract, MarginalAndSamplingInvariants) {
  const auto backend = make(3);
  backend->prepare_basis_state(0);
  backend->apply_circuit(named_gate_circuit());

  // Marginals are distributions, and coarser marginals are consistent with
  // finer ones.
  const auto full = backend->marginal_probabilities({0, 1, 2});
  EXPECT_NEAR(std::accumulate(full.begin(), full.end(), 0.0), 1.0,
              prob_tol());
  const auto pair = backend->marginal_probabilities({0, 1});
  const auto single = backend->marginal_probabilities({0});
  for (std::uint64_t m = 0; m < 2; ++m)
    EXPECT_NEAR(single[m], pair[2 * m] + pair[2 * m + 1], tight_tol());

  // Shots are conserved and sampling is deterministic given the seed.
  Rng rng_a(17), rng_b(17);
  const auto counts_a = backend->sample({0, 1}, 1000, rng_a);
  const auto counts_b = backend->sample({0, 1}, 1000, rng_b);
  EXPECT_EQ(counts_a, counts_b);
  EXPECT_EQ(std::accumulate(counts_a.begin(), counts_a.end(),
                            std::uint64_t{0}),
            1000u);
}

TEST_P(BackendContract, ZeroProbabilityDepolarizingIsNoop) {
  const auto backend = make(2);
  backend->prepare_basis_state(0);
  Circuit c(2);
  c.h(0);
  c.cnot(0, 1);
  backend->apply_circuit(c);
  const auto before = backend->marginal_probabilities({0, 1});
  Rng rng(3);
  backend->apply_depolarizing(0, 0.0, rng);
  const auto after = backend->marginal_probabilities({0, 1});
  EXPECT_EQ(before, after);
}

TEST_P(BackendContract, ExactChannelsFlagMatchesRngConsumption) {
  // Exact-channel engines must not consume the Rng (the flag is the license
  // for callers to draw every shot from one noisy evolution); trajectory
  // engines consume one Bernoulli draw per potential event.
  const auto backend = make(2);
  backend->prepare_basis_state(0);
  Rng used(11), untouched(11);
  backend->apply_depolarizing(0, 0.5, used);
  if (backend->exact_channels()) {
    EXPECT_EQ(used.next(), untouched.next());
  } else {
    EXPECT_NE(used.next(), untouched.next());
  }
}

TEST_P(BackendContract, NoisyCircuitMatchesChannelSemantics) {
  const Circuit circuit = named_gate_circuit();
  const NoiseModel noise{0.05, 0.08};
  const auto backend = make(3);
  Rng rng(7);
  backend->prepare_basis_state(0);
  backend->apply_circuit_with_noise(circuit, noise, rng);
  const auto marginal = backend->marginal_probabilities({0, 1, 2});

  if (backend->exact_channels()) {
    // Ensemble evolution: exactly the density-matrix channel result.
    DensityMatrix rho(3);
    rho.apply_circuit_with_noise(circuit, noise);
    const auto expected = rho.marginal_probabilities({0, 1, 2});
    for (std::uint64_t m = 0; m < 8; ++m)
      EXPECT_NEAR(marginal[m], expected[m], tight_tol()) << "outcome " << m;
  } else {
    // One stochastic trajectory: identical error placement and RNG stream
    // as the reference sampler.
    Rng reference_rng(7);
    const Statevector psi =
        run_noisy_trajectory(circuit, noise, reference_rng);
    const auto expected = psi.marginal_probabilities({0, 1, 2});
    for (std::uint64_t m = 0; m < 8; ++m)
      EXPECT_NEAR(marginal[m], expected[m], tight_tol()) << "outcome " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, BackendContract,
    ::testing::Values(SimulatorKind::kStatevector,
                      SimulatorKind::kShardedStatevector,
                      SimulatorKind::kDensityMatrix),
    [](const ::testing::TestParamInfo<SimulatorKind>& param) {
      std::string name = simulator_kind_name(param.param);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

}  // namespace
}  // namespace qtda
