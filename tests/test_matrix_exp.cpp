// Tests for linalg/matrix_exp.hpp.
#include "linalg/matrix_exp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/random.hpp"
#include "linalg/matrix_ops.hpp"

namespace qtda {
namespace {

RealMatrix random_symmetric(std::size_t n, Rng& rng) {
  RealMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = rng.uniform(-2.0, 2.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

TEST(MatrixExp, ZeroHamiltonianGivesIdentity) {
  const auto u = unitary_exp(RealMatrix(3, 3));
  EXPECT_LT(max_abs_diff(u, ComplexMatrix::identity(3)), 1e-12);
}

TEST(MatrixExp, ScalarCase) {
  // e^{i·2·1.5} on a 1×1 "matrix".
  const auto u = unitary_exp(RealMatrix{{2.0}}, 1.5);
  EXPECT_NEAR(u(0, 0).real(), std::cos(3.0), 1e-12);
  EXPECT_NEAR(u(0, 0).imag(), std::sin(3.0), 1e-12);
}

TEST(MatrixExp, PauliZKnownForm) {
  // H = Z → e^{iθZ} = diag(e^{iθ}, e^{−iθ}).
  RealMatrix z{{1.0, 0.0}, {0.0, -1.0}};
  const double theta = 0.7;
  const auto u = unitary_exp(z, theta);
  EXPECT_NEAR(u(0, 0).real(), std::cos(theta), 1e-12);
  EXPECT_NEAR(u(0, 0).imag(), std::sin(theta), 1e-12);
  EXPECT_NEAR(u(1, 1).real(), std::cos(theta), 1e-12);
  EXPECT_NEAR(u(1, 1).imag(), -std::sin(theta), 1e-12);
  EXPECT_NEAR(std::abs(u(0, 1)), 0.0, 1e-12);
}

TEST(MatrixExp, PauliXKnownForm) {
  // e^{iθX} = cosθ·I + i·sinθ·X.
  RealMatrix x{{0.0, 1.0}, {1.0, 0.0}};
  const double theta = 1.1;
  const auto u = unitary_exp(x, theta);
  EXPECT_NEAR(u(0, 0).real(), std::cos(theta), 1e-12);
  EXPECT_NEAR(u(0, 1).imag(), std::sin(theta), 1e-12);
  EXPECT_NEAR(u(1, 0).imag(), std::sin(theta), 1e-12);
}

class UnitaryExpProperties : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UnitaryExpProperties, ResultIsUnitary) {
  Rng rng(GetParam() * 13 + 1);
  const auto h = random_symmetric(GetParam(), rng);
  EXPECT_TRUE(is_unitary(unitary_exp(h), 1e-9));
}

TEST_P(UnitaryExpProperties, PowersCompose) {
  Rng rng(GetParam() * 17 + 3);
  const auto h = random_symmetric(GetParam(), rng);
  const HamiltonianExponential exp_h(h);
  // U(2) == U(1)·U(1), U(4) == U(2)·U(2).
  const auto u1 = exp_h.unitary(1.0);
  const auto u2 = exp_h.unitary(2.0);
  const auto u4 = exp_h.unitary(4.0);
  EXPECT_LT(max_abs_diff(u2, matmul(u1, u1)), 1e-9);
  EXPECT_LT(max_abs_diff(u4, matmul(u2, u2)), 1e-9);
}

TEST_P(UnitaryExpProperties, InverseIsNegativeScale) {
  Rng rng(GetParam() * 19 + 5);
  const auto h = random_symmetric(GetParam(), rng);
  const HamiltonianExponential exp_h(h);
  const auto product = matmul(exp_h.unitary(1.0), exp_h.unitary(-1.0));
  EXPECT_LT(max_abs_diff(product, ComplexMatrix::identity(GetParam())),
            1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, UnitaryExpProperties,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(MatrixExp, EigenvaluesExposedAscending) {
  RealMatrix d(2, 2);
  d(0, 0) = 2.0;
  d(1, 1) = -1.0;
  const HamiltonianExponential exp_h(d);
  ASSERT_EQ(exp_h.eigenvalues().size(), 2u);
  EXPECT_NEAR(exp_h.eigenvalues()[0], -1.0, 1e-12);
  EXPECT_NEAR(exp_h.eigenvalues()[1], 2.0, 1e-12);
  EXPECT_EQ(exp_h.dimension(), 2u);
}

}  // namespace
}  // namespace qtda
