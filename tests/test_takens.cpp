// Tests for ml/takens.hpp.
#include "ml/takens.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace qtda {
namespace {

TEST(Takens, OutputSizeFormula) {
  TakensOptions options{3, 2, 1};  // span (3−1)·2 = 4
  EXPECT_EQ(takens_output_size(10, options), 6u);
  EXPECT_EQ(takens_output_size(5, options), 1u);
  EXPECT_EQ(takens_output_size(4, options), 0u);
}

TEST(Takens, EmbedsCoordinatesCorrectly) {
  const std::vector<double> series{0, 1, 2, 3, 4, 5};
  TakensOptions options{3, 1, 1};
  const auto cloud = takens_embedding(series, options);
  ASSERT_EQ(cloud.size(), 4u);
  EXPECT_EQ(cloud.dimension(), 3u);
  EXPECT_DOUBLE_EQ(cloud.point(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(cloud.point(0)[1], 1.0);
  EXPECT_DOUBLE_EQ(cloud.point(0)[2], 2.0);
  EXPECT_DOUBLE_EQ(cloud.point(3)[0], 3.0);
  EXPECT_DOUBLE_EQ(cloud.point(3)[2], 5.0);
}

TEST(Takens, DelayPicksSpacedSamples) {
  const std::vector<double> series{0, 10, 20, 30, 40, 50, 60};
  TakensOptions options{2, 3, 1};
  const auto cloud = takens_embedding(series, options);
  ASSERT_EQ(cloud.size(), 4u);
  EXPECT_DOUBLE_EQ(cloud.point(0)[1], 30.0);
  EXPECT_DOUBLE_EQ(cloud.point(1)[1], 40.0);
}

TEST(Takens, StrideSubsamples) {
  std::vector<double> series(100);
  for (std::size_t i = 0; i < 100; ++i) series[i] = static_cast<double>(i);
  TakensOptions options{2, 1, 10};
  const auto cloud = takens_embedding(series, options);
  EXPECT_EQ(cloud.size(), 10u);
  EXPECT_DOUBLE_EQ(cloud.point(1)[0], 10.0);
}

TEST(Takens, TooShortSeriesThrows) {
  TakensOptions options{5, 3, 1};
  EXPECT_THROW(takens_embedding({1.0, 2.0, 3.0}, options), Error);
}

TEST(Takens, ParameterValidation) {
  const std::vector<double> series(10, 0.0);
  EXPECT_THROW(takens_embedding(series, {0, 1, 1}), Error);
  EXPECT_THROW(takens_embedding(series, {2, 0, 1}), Error);
  EXPECT_THROW(takens_embedding(series, {2, 1, 0}), Error);
}

TEST(Takens, SinusoidEmbedsToClosedLoop) {
  // A pure sinusoid delay-embedded in 2-D with a quarter-period delay is a
  // circle: max and min radius from the centroid are nearly equal.
  const std::size_t period = 40;
  std::vector<double> series(400);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] = std::sin(2.0 * M_PI * static_cast<double>(i) /
                         static_cast<double>(period));
  TakensOptions options{2, period / 4, 1};
  const auto cloud = takens_embedding(series, options);
  double cx = 0.0, cy = 0.0;
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    cx += cloud.point(i)[0];
    cy += cloud.point(i)[1];
  }
  cx /= static_cast<double>(cloud.size());
  cy /= static_cast<double>(cloud.size());
  double rmin = 1e9, rmax = 0.0;
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const double dx = cloud.point(i)[0] - cx;
    const double dy = cloud.point(i)[1] - cy;
    const double r = std::sqrt(dx * dx + dy * dy);
    rmin = std::min(rmin, r);
    rmax = std::max(rmax, r);
  }
  EXPECT_NEAR(rmin, rmax, 0.05);
  EXPECT_NEAR(rmax, 1.0, 0.05);
}

}  // namespace
}  // namespace qtda
