// Tests for quantum/qpe.hpp: wiring, exact phases, Fejér statistics.
#include "quantum/qpe.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "quantum/executor.hpp"
#include "quantum/gates.hpp"
#include "quantum/types.hpp"

namespace qtda {
namespace {

/// Diagonal single-qubit unitary with eigenphase θ on |1⟩.
ComplexMatrix phase_unitary(double theta, std::uint64_t power) {
  ComplexMatrix u(2, 2);
  u(0, 0) = 1.0;
  const double angle = kTwoPi * theta * static_cast<double>(power);
  u(1, 1) = Amplitude{std::cos(angle), std::sin(angle)};
  return u;
}

TEST(QpeLayout, WireBlocks) {
  QpeLayout layout{3, 2, 2};
  EXPECT_EQ(layout.total(), 7u);
  EXPECT_EQ(layout.precision_wires(), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(layout.system_wires(), (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(layout.ancilla_wires(), (std::vector<std::size_t>{5, 6}));
}

class ExactPhase : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactPhase, TBitPhaseIsMeasuredDeterministically) {
  // θ = m/2^t is representable: QPE returns m with probability 1.
  const std::size_t t = 3;
  const std::uint64_t m = GetParam();
  const double theta = static_cast<double>(m) / 8.0;
  QpeLayout layout{t, 1, 0};
  Circuit qpe = build_qpe_circuit_dense(
      layout, [&](std::uint64_t power) { return phase_unitary(theta, power); });

  // Prepend eigenstate preparation |1⟩ on the system wire.
  Circuit circuit(layout.total());
  circuit.x(layout.system_wires()[0]);
  circuit.append_circuit(qpe);

  const auto state = run_circuit(circuit);
  const auto marginal = state.marginal_probabilities(layout.precision_wires());
  for (std::uint64_t outcome = 0; outcome < 8; ++outcome) {
    EXPECT_NEAR(marginal[outcome], outcome == m ? 1.0 : 0.0, 1e-9)
        << "m=" << m << " outcome=" << outcome;
  }
}

INSTANTIATE_TEST_SUITE_P(Phases, ExactPhase,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

TEST(Qpe, ZeroEigenvectorGivesZeroOutcome) {
  // The |0⟩ eigenstate of the diagonal unitary has phase 0.
  QpeLayout layout{4, 1, 0};
  Circuit qpe = build_qpe_circuit_dense(layout, [&](std::uint64_t power) {
    return phase_unitary(0.37, power);  // phase only on |1⟩
  });
  const auto state = run_circuit(qpe);  // system stays |0⟩
  const auto marginal = state.marginal_probabilities(layout.precision_wires());
  EXPECT_NEAR(marginal[0], 1.0, 1e-9);
}

class FejerDistribution : public ::testing::TestWithParam<double> {};

TEST_P(FejerDistribution, CircuitMatchesClosedForm) {
  // For a non-representable phase the outcome distribution must equal the
  // Fejér kernel — validates both the circuit wiring and the formula.
  const double theta = GetParam();
  const std::size_t t = 3;
  QpeLayout layout{t, 1, 0};
  Circuit qpe = build_qpe_circuit_dense(
      layout, [&](std::uint64_t power) { return phase_unitary(theta, power); });
  Circuit circuit(layout.total());
  circuit.x(layout.system_wires()[0]);
  circuit.append_circuit(qpe);
  const auto state = run_circuit(circuit);
  const auto marginal = state.marginal_probabilities(layout.precision_wires());
  double total = 0.0;
  for (std::uint64_t m = 0; m < 8; ++m) {
    EXPECT_NEAR(marginal[m], qpe_outcome_probability(theta, m, t), 1e-9)
        << "theta=" << theta << " m=" << m;
    total += marginal[m];
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Thetas, FejerDistribution,
                         ::testing::Values(0.1, 0.23, 0.375, 0.41, 0.77,
                                           0.961));

TEST(QpeOutcomeProbability, ExactZeroPhase) {
  EXPECT_DOUBLE_EQ(qpe_zero_probability(0.0, 5), 1.0);
  EXPECT_NEAR(qpe_zero_probability(1.0, 5), 1.0, 1e-12);  // periodic
}

TEST(QpeOutcomeProbability, HalfPhaseIsRejected) {
  // θ = 1/2 is exactly representable: Pr[0] = 0.
  EXPECT_NEAR(qpe_zero_probability(0.5, 3), 0.0, 1e-12);
}

TEST(QpeOutcomeProbability, SumsToOne) {
  for (double theta : {0.1, 0.33, 0.49, 0.8}) {
    for (std::size_t t : {1u, 2u, 4u, 6u}) {
      double total = 0.0;
      for (std::uint64_t m = 0; m < (1ULL << t); ++m)
        total += qpe_outcome_probability(theta, m, t);
      EXPECT_NEAR(total, 1.0, 1e-10) << "theta=" << theta << " t=" << t;
    }
  }
}

TEST(QpeOutcomeProbability, MorePrecisionSharpensRejection) {
  // For fixed θ away from 0, Pr[0] decreases as t grows.
  const double theta = 0.2;
  double previous = 1.0;
  for (std::size_t t = 1; t <= 8; ++t) {
    const double p = qpe_zero_probability(theta, t);
    EXPECT_LE(p, previous + 1e-12);
    previous = p;
  }
  EXPECT_LT(previous, 0.01);
}

TEST(Qpe, TwoQubitSystemWithDiagonalUnitary) {
  // System of 2 qubits: eigenphase of |11⟩ is measured when prepared.
  const double theta = 0.25;
  QpeLayout layout{2, 2, 0};
  const auto power_matrix = [&](std::uint64_t power) {
    ComplexMatrix u = ComplexMatrix::identity(4);
    const double angle = kTwoPi * theta * static_cast<double>(power);
    u(3, 3) = Amplitude{std::cos(angle), std::sin(angle)};
    return u;
  };
  Circuit qpe = build_qpe_circuit_dense(layout, power_matrix);
  Circuit circuit(layout.total());
  circuit.x(layout.system_wires()[0]);
  circuit.x(layout.system_wires()[1]);
  circuit.append_circuit(qpe);
  const auto state = run_circuit(circuit);
  const auto marginal = state.marginal_probabilities(layout.precision_wires());
  // θ = 0.25 on 2 precision qubits is outcome m = 1.
  EXPECT_NEAR(marginal[1], 1.0, 1e-9);
}

}  // namespace
}  // namespace qtda
