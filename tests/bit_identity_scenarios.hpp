/// \file bit_identity_scenarios.hpp
/// \brief Deterministic simulation scenarios hashed for the bit-identity
/// guarantee.
///
/// Each scenario runs a fixed circuit/plan/operator workload through one of
/// the engines and fingerprints the resulting amplitudes (FNV-1a over the
/// raw IEEE-754 bytes).  The committed expectations in test_bit_identity.cpp
/// were captured from the tree *before* the SIMD/precision refactor, so the
/// scalar (`QTDA_SIMD=0`) double-precision paths are pinned, bit for bit, to
/// the historical arithmetic — the contract the CI scalar leg asserts.
///
/// Scenarios only use public engine APIs and avoid every source of
/// nondeterminism except seeded Rng streams.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "linalg/expm_multiply.hpp"
#include "linalg/sparse_matrix.hpp"
#include "quantum/backend.hpp"
#include "quantum/compiler.hpp"
#include "quantum/density_matrix.hpp"
#include "quantum/noise.hpp"
#include "quantum/sharded_statevector.hpp"
#include "quantum/statevector.hpp"

namespace qtda {
namespace testing {

/// 64-bit FNV-1a over a byte range.
inline void fnv1a_bytes(const void* data, std::size_t size,
                        std::uint64_t& hash) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
}

inline std::uint64_t fingerprint_amplitudes(
    const std::vector<Amplitude>& amplitudes) {
  std::uint64_t hash = 1469598103934665603ULL;
  fnv1a_bytes(amplitudes.data(), amplitudes.size() * sizeof(Amplitude), hash);
  return hash;
}

inline std::uint64_t fingerprint_doubles(const std::vector<double>& values) {
  std::uint64_t hash = 1469598103934665603ULL;
  fnv1a_bytes(values.data(), values.size() * sizeof(double), hash);
  return hash;
}

/// A mixed workload: Hadamard wall, entanglers, rotations, and the
/// controlled-phase ladder that the compiler fuses into wide diagonals.
inline Circuit bit_identity_circuit(std::size_t n) {
  Circuit c(n);
  for (std::size_t q = 0; q < n; ++q) c.h(q);
  c.cnot(0, 1);
  c.cz(1, 2);
  c.t(2);
  c.s(3 % n);
  c.ry(2, 0.7);
  c.rx(n - 2, -1.1);
  c.rz(4 % n, 0.3);
  for (std::size_t j = 0; j + 1 < n; ++j)
    c.controlled_phase(j, n - 1, kPi / static_cast<double>(2 + j));
  c.cnot(n - 2, n - 1);
  c.phase(0, 0.25);
  c.swap(1, n - 2);
  return c;
}

/// Path-graph Laplacian of dimension \p dim (symmetric, spectrum in [0, 4]).
inline SparseMatrix bit_identity_laplacian(std::size_t dim) {
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < dim; ++i) {
    triplets.push_back({i, i, 2.0});
    if (i + 1 < dim) {
      triplets.push_back({i, i + 1, -1.0});
      triplets.push_back({i + 1, i, -1.0});
    }
  }
  return SparseMatrix::from_triplets(dim, dim, std::move(triplets));
}

struct BitIdentityFingerprint {
  std::string name;
  std::uint64_t hash;
};

/// Runs every scenario and returns (name, fingerprint) pairs in a fixed
/// order.
inline std::vector<BitIdentityFingerprint> bit_identity_fingerprints() {
  std::vector<BitIdentityFingerprint> out;
  const Circuit c10 = bit_identity_circuit(10);

  {  // Dense engine, gate-by-gate walk.
    Statevector psi(10);
    psi.set_basis_state(3);
    psi.apply_circuit(c10);
    out.push_back({"dense_circuit", fingerprint_amplitudes(psi.amplitudes())});
    out.push_back(
        {"dense_marginal",
         fingerprint_doubles(psi.marginal_probabilities({0, 3, 5, 9}))});
  }
  {  // Dense engine, fused plan (default compiler options).
    Statevector psi(10);
    psi.set_basis_state(3);
    const ExecutionPlan plan = compile_circuit(c10, CompilerOptions{});
    psi.apply_plan(plan);
    out.push_back(
        {"dense_plan_fused", fingerprint_amplitudes(psi.amplitudes())});
  }
  {  // Dense engine, unfused plan (must equal the gate-by-gate walk).
    Statevector psi(10);
    psi.set_basis_state(3);
    CompilerOptions options;
    options.fuse = false;
    psi.apply_plan(compile_circuit(c10, options));
    out.push_back(
        {"dense_plan_unfused", fingerprint_amplitudes(psi.amplitudes())});
  }
  {  // Sharded engine (3 slabs), gate-by-gate walk.
    ShardedStatevector psi(10, 3);
    psi.set_basis_state(3);
    psi.apply_circuit(c10);
    out.push_back(
        {"sharded_circuit", fingerprint_amplitudes(psi.amplitudes())});
    out.push_back(
        {"sharded_marginal",
         fingerprint_doubles(psi.marginal_probabilities({0, 3, 5, 9}))});
  }
  {  // Sharded backend, fused plan with native diagonal execution.
    ShardedStatevectorBackend backend(10, 3);
    backend.prepare_basis_state(3);
    backend.apply_plan(compile_circuit(c10, CompilerOptions{}));
    out.push_back(
        {"sharded_plan_fused",
         fingerprint_amplitudes(backend.state().amplitudes())});
  }
  {  // Exact density-matrix channel evolution.
    DensityMatrix rho(5);
    rho.apply_circuit_with_noise(bit_identity_circuit(5),
                                 NoiseModel{0.05, 0.08});
    std::vector<Amplitude> elements;
    elements.reserve(32 * 32);
    for (std::uint64_t r = 0; r < 32; ++r)
      for (std::uint64_t col = 0; col < 32; ++col)
        elements.push_back(rho.element(r, col));
    out.push_back({"density_noisy", fingerprint_amplitudes(elements)});
  }
  {  // One stochastic trajectory (seeded): single-qubit Pauli kernels.
    Rng rng(42);
    const Statevector psi =
        run_noisy_trajectory(bit_identity_circuit(8), NoiseModel{0.1, 0.2},
                             rng);
    out.push_back(
        {"trajectory_seed42", fingerprint_amplitudes(psi.amplitudes())});
  }
  {  // Matrix-free Chebyshev oracle: CSR matvec + expm recurrence, both the
     // direct path and controlled through the block gather/scatter.
    Statevector psi(8);
    psi.set_basis_state(1);
    psi.apply_circuit(bit_identity_circuit(8));
    const SparseExpOperator op(bit_identity_laplacian(32), 0.9, 0.0, 4.0);
    psi.apply_operator(op, {3, 4, 5, 6, 7});
    psi.apply_operator(op, {2, 3, 5, 6, 7}, {0});
    out.push_back(
        {"dense_operator", fingerprint_amplitudes(psi.amplitudes())});
  }
  {  // Large state (2^18 amplitudes): crosses the parallel-threshold branch
     // of the dense kernels.
    Statevector psi(18);
    Circuit c(18);
    for (std::size_t q = 0; q < 18; ++q) c.h(q);
    for (std::size_t q = 0; q + 1 < 18; q += 2) c.cnot(q, q + 1);
    c.rz(17, 0.61);
    c.controlled_phase(0, 17, 0.413);
    c.ry(9, -0.2);
    psi.apply_circuit(c);
    out.push_back({"dense_large", fingerprint_amplitudes(psi.amplitudes())});
    out.push_back({"dense_large_marginal",
                   fingerprint_doubles(psi.marginal_probabilities(
                       {0, 1, 2, 8, 16, 17}))});
  }
  return out;
}

}  // namespace testing
}  // namespace qtda
