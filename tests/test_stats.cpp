// Tests for common/stats.hpp.
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"

namespace qtda {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, VarianceUnbiased) {
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({3.0}), 0.0);
  // Sample {2, 4}: mean 3, var = ((1)+(1))/(2-1) = 2.
  EXPECT_DOUBLE_EQ(variance({2.0, 4.0}), 2.0);
  EXPECT_DOUBLE_EQ(stddev({2.0, 4.0}), std::sqrt(2.0));
}

TEST(Stats, QuantileMatchesNumpyType7) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 3.25);
}

TEST(Stats, QuantileUnsortedInput) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Stats, QuantileValidation) {
  EXPECT_THROW(quantile({}, 0.5), Error);
  EXPECT_THROW(quantile({1.0}, 1.5), Error);
  EXPECT_THROW(quantile({1.0}, -0.1), Error);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, FiveNumberSummaryBasics) {
  const auto s = five_number_summary({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.q1, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 7.0);
  EXPECT_EQ(s.outliers, 0u);
  EXPECT_EQ(s.count, 9u);
  EXPECT_DOUBLE_EQ(s.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(s.whisker_high, 9.0);
}

TEST(Stats, FiveNumberSummaryDetectsOutlier) {
  // 100 is far beyond q3 + 1.5 IQR of the base sample.
  const auto s = five_number_summary({1, 2, 3, 4, 5, 6, 7, 8, 100});
  EXPECT_EQ(s.outliers, 1u);
  EXPECT_LT(s.whisker_high, 100.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(Stats, FiveNumberSummarySingleton) {
  const auto s = five_number_summary({2.5});
  EXPECT_DOUBLE_EQ(s.min, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.max, 2.5);
  EXPECT_EQ(s.outliers, 0u);
}

TEST(Stats, PearsonCorrelationExtremes) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> up{2, 4, 6, 8};
  const std::vector<double> down{8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(xs, down), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  EXPECT_DOUBLE_EQ(pearson_correlation({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(Stats, SkewnessSymmetricIsZero) {
  EXPECT_NEAR(skewness({-2, -1, 0, 1, 2}), 0.0, 1e-12);
}

TEST(Stats, SkewnessSignOfTails) {
  EXPECT_GT(skewness({0, 0, 0, 0, 10}), 0.0);
  EXPECT_LT(skewness({0, 10, 10, 10, 10}), 0.0);
}

TEST(Stats, KurtosisOfNormalSample) {
  Rng rng(3);
  std::vector<double> xs(100000);
  for (double& x : xs) x = rng.normal();
  EXPECT_NEAR(kurtosis(xs), 3.0, 0.1);
}

TEST(Stats, KurtosisHeavyTails) {
  // A sample with a large outlier has kurtosis well above 3.
  std::vector<double> xs(100, 0.0);
  for (std::size_t i = 0; i < 50; ++i) xs[i] = (i % 2) ? 1.0 : -1.0;
  xs[99] = 20.0;
  EXPECT_GT(kurtosis(xs), 10.0);
}

TEST(Stats, RmsKnownValues) {
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
  EXPECT_DOUBLE_EQ(rms({3.0, 4.0}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(rms({-2.0, 2.0}), 2.0);
}

class QuantileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(QuantileMonotone, QuantilesAreMonotoneInQ) {
  Rng rng(71);
  std::vector<double> xs(501);
  for (double& x : xs) x = rng.normal();
  const double q = GetParam();
  EXPECT_LE(quantile(xs, q * 0.5), quantile(xs, q));
  EXPECT_LE(quantile(xs, q), quantile(xs, 0.5 + q * 0.5));
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileMonotone,
                         ::testing::Values(0.1, 0.25, 0.4, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace qtda
