// Tests for quantum/circuit.hpp.
#include "quantum/circuit.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "linalg/matrix_ops.hpp"
#include "quantum/gates.hpp"

namespace qtda {
namespace {

TEST(Circuit, AppendersRecordGates) {
  Circuit c(3);
  c.h(0);
  c.cnot(0, 1);
  c.rz(2, 0.5);
  EXPECT_EQ(c.gate_count(), 3u);
  EXPECT_EQ(c.gates()[0].kind, GateKind::kH);
  EXPECT_EQ(c.gates()[1].kind, GateKind::kX);
  ASSERT_EQ(c.gates()[1].controls.size(), 1u);
  EXPECT_EQ(c.gates()[1].controls[0], 0u);
  EXPECT_DOUBLE_EQ(c.gates()[2].parameter, 0.5);
}

TEST(Circuit, QubitOutOfRangeThrows) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), Error);
  EXPECT_THROW(c.cnot(0, 2), Error);
}

TEST(Circuit, DuplicateWireThrows) {
  Circuit c(2);
  EXPECT_THROW(c.cnot(1, 1), Error);
  Gate g;
  g.kind = GateKind::kUnitary;
  g.targets = {0, 0};
  g.matrix = ComplexMatrix::identity(4);
  EXPECT_THROW(c.append(g), Error);
}

TEST(Circuit, UnitaryShapeValidated) {
  Circuit c(3);
  EXPECT_THROW(c.unitary(ComplexMatrix::identity(2), {0, 1}), Error);
  EXPECT_NO_THROW(c.unitary(ComplexMatrix::identity(4), {0, 1}));
}

TEST(Circuit, WidthLimits) {
  EXPECT_THROW(Circuit(0), Error);
  EXPECT_THROW(Circuit(31), Error);
  EXPECT_NO_THROW(Circuit(1));
}

TEST(Circuit, DepthCountsQubitChains) {
  Circuit c(3);
  // Layer 1: H(0), H(1), H(2) — parallel.  Layer 2: CNOT(0,1).  Layer 3: H(1).
  c.h(0);
  c.h(1);
  c.h(2);
  c.cnot(0, 1);
  c.h(1);
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, DepthOfEmptyCircuitIsZero) {
  EXPECT_EQ(Circuit(2).depth(), 0u);
}

TEST(Circuit, TwoQubitGateCount) {
  Circuit c(3);
  c.h(0);
  c.cnot(0, 1);
  c.cz(1, 2);
  c.unitary(ComplexMatrix::identity(4), {0, 1});
  EXPECT_EQ(c.two_qubit_gate_count(), 3u);
}

TEST(Circuit, SwapIsThreeCnots) {
  Circuit c(2);
  c.swap(0, 1);
  EXPECT_EQ(c.gate_count(), 3u);
}

TEST(Circuit, GateCensus) {
  Circuit c(2);
  c.h(0);
  c.h(1);
  c.cnot(0, 1);
  const auto census = c.gate_census();
  bool found_h = false, found_cx = false;
  for (const auto& [name, count] : census) {
    if (name == "H") {
      EXPECT_EQ(count, 2u);
      found_h = true;
    }
    if (name == "C(1)X") {
      EXPECT_EQ(count, 1u);
      found_cx = true;
    }
  }
  EXPECT_TRUE(found_h);
  EXPECT_TRUE(found_cx);
}

TEST(Circuit, AppendCircuitConcatenates) {
  Circuit a(2), b(2);
  a.h(0);
  b.x(1);
  b.add_global_phase(0.5);
  a.append_circuit(b);
  EXPECT_EQ(a.gate_count(), 2u);
  EXPECT_DOUBLE_EQ(a.global_phase(), 0.5);
}

TEST(Circuit, AppendCircuitWidthMismatchThrows) {
  Circuit a(2), b(3);
  EXPECT_THROW(a.append_circuit(b), Error);
}

TEST(Circuit, ControlledOnAddsControlEverywhere) {
  Circuit c(3);
  c.h(1);
  c.cnot(1, 2);
  c.add_global_phase(0.7);
  const Circuit controlled = c.controlled_on(0);
  ASSERT_EQ(controlled.gate_count(), 3u);  // +1 phase gate for global phase
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& controls = controlled.gates()[i].controls;
    EXPECT_TRUE(std::find(controls.begin(), controls.end(), 0u) !=
                controls.end());
  }
  EXPECT_EQ(controlled.gates()[2].kind, GateKind::kPhase);
  EXPECT_DOUBLE_EQ(controlled.gates()[2].parameter, 0.7);
  EXPECT_DOUBLE_EQ(controlled.global_phase(), 0.0);
}

TEST(Circuit, ControlledOnUsedWireThrows) {
  Circuit c(2);
  c.h(0);
  EXPECT_THROW(c.controlled_on(0), Error);
}

TEST(Circuit, SingleQubitMatrixOfNamedGate) {
  Gate g;
  g.kind = GateKind::kRZ;
  g.targets = {0};
  g.parameter = 0.4;
  EXPECT_LT(max_abs_diff(g.single_qubit_matrix(), gates::RZ(0.4)), 1e-15);
}

TEST(Circuit, ToStringMentionsGates) {
  Circuit c(2);
  c.h(0);
  c.rz(1, 0.25);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("H"), std::string::npos);
  EXPECT_NE(s.find("RZ"), std::string::npos);
}

}  // namespace
}  // namespace qtda
