// Tests for topology/boundary.hpp.
#include "topology/boundary.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "linalg/matrix_ops.hpp"
#include "topology/random_complex.hpp"

namespace qtda {
namespace {

SimplicialComplex paper_complex() {
  // Appendix A, Eq. (13).
  return SimplicialComplex::from_simplices(
      {Simplex{1, 2, 3}, Simplex{3, 4}, Simplex{3, 5}, Simplex{4, 5}},
      /*close_downward=*/true);
}

TEST(Boundary, VertexBoundaryIsEmptyMatrix) {
  const auto complex = paper_complex();
  const auto d0 = boundary_operator(complex, 0);
  EXPECT_EQ(d0.rows(), 0u);
  EXPECT_EQ(d0.cols(), 5u);
  EXPECT_EQ(d0.nonzeros(), 0u);
}

TEST(Boundary, AboveMaxDimensionIsEmpty) {
  const auto complex = paper_complex();
  const auto d3 = boundary_operator(complex, 3);
  EXPECT_EQ(d3.rows(), 1u);  // one 2-simplex
  EXPECT_EQ(d3.cols(), 0u);
}

TEST(Boundary, EdgeBoundarySigns) {
  // ∂[a,b] = [b] − [a] with the standard orientation.
  const auto complex = SimplicialComplex::from_simplices({Simplex{0, 1}}, true);
  const auto d1 = boundary_operator(complex, 1).to_dense();
  ASSERT_EQ(d1.rows(), 2u);
  ASSERT_EQ(d1.cols(), 1u);
  EXPECT_DOUBLE_EQ(d1(0, 0), -1.0);  // −[0]: dropping vertex 1 has sign −1
  EXPECT_DOUBLE_EQ(d1(1, 0), 1.0);   // +[1]: dropping vertex 0 has sign +1
}

TEST(Boundary, PaperExampleD1UpToGlobalSign) {
  // Eq. (14).  The paper's printed ∂1 is the global negation of its own
  // Eq. (1) (see boundary.hpp); Δ is invariant, so compare |entries| and
  // verify the sign pattern is a global flip of ours.
  const auto complex = paper_complex();
  const auto d1 = boundary_operator(complex, 1).to_dense();
  const RealMatrix paper{{1, 1, 0, 0, 0, 0},   {-1, 0, 1, 0, 0, 0},
                         {0, -1, -1, 1, 1, 0}, {0, 0, 0, -1, 0, 1},
                         {0, 0, 0, 0, -1, -1}};
  ASSERT_EQ(d1.rows(), 5u);
  ASSERT_EQ(d1.cols(), 6u);
  EXPECT_LT(max_abs_diff(scale(d1, -1.0), paper), 1e-15);
}

TEST(Boundary, PaperExampleD2) {
  // Eq. (15): ∂2 of {1,2,3} over edges in lexicographic order.
  const auto complex = paper_complex();
  const auto d2 = boundary_operator(complex, 2).to_dense();
  const RealMatrix paper{{1}, {-1}, {1}, {0}, {0}, {0}};
  ASSERT_EQ(d2.rows(), 6u);
  ASSERT_EQ(d2.cols(), 1u);
  EXPECT_LT(max_abs_diff(d2, paper), 1e-15);
}

TEST(Boundary, ColumnHasKPlusOneNonzeros) {
  const auto complex = paper_complex();
  const auto d1 = boundary_operator(complex, 1);
  EXPECT_EQ(d1.nonzeros(), 2u * complex.count(1));
  const auto d2 = boundary_operator(complex, 2);
  EXPECT_EQ(d2.nonzeros(), 3u * complex.count(2));
}

class BoundarySquaresToZero : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BoundarySquaresToZero, DkDk1IsZero) {
  // Fundamental identity ∂_k ∘ ∂_{k+1} = 0 on random flag complexes.
  Rng rng(GetParam());
  RandomComplexOptions options;
  options.num_vertices = 9;
  options.max_dimension = 3;
  const auto complex = random_flag_complex(options, rng);
  for (int k = 1; k + 1 <= complex.max_dimension(); ++k) {
    if (complex.count(k + 1) == 0) continue;
    const auto dk = boundary_operator(complex, k).to_dense();
    const auto dk1 = boundary_operator(complex, k + 1).to_dense();
    const auto product = matmul(dk, dk1);
    EXPECT_LT(frobenius_norm(product), 1e-12)
        << "∂" << k << "·∂" << k + 1 << " != 0";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundarySquaresToZero,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace qtda
