// Tests for quantum/noise.hpp and the noisy executor.
#include "quantum/noise.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "quantum/executor.hpp"
#include "quantum/gates.hpp"

namespace qtda {
namespace {

TEST(NoiseModel, NoiselessPredicate) {
  EXPECT_TRUE(NoiseModel{}.is_noiseless());
  EXPECT_FALSE((NoiseModel{0.01, 0.0}).is_noiseless());
  EXPECT_FALSE((NoiseModel{0.0, 0.05}).is_noiseless());
}

TEST(Depolarizing, ZeroProbabilityIsNoop) {
  Statevector s(1);
  Rng rng(1);
  maybe_apply_depolarizing(s, 0, 0.0, rng);
  EXPECT_DOUBLE_EQ(s.probability(0), 1.0);
}

TEST(Depolarizing, CertainErrorChangesStateInPauliBasis) {
  // With p = 1 on |0⟩, X and Y flip the state (2/3 of draws), Z leaves the
  // probability untouched — so over many trials the flip rate is ≈ 2/3.
  Rng rng(2);
  int flips = 0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    Statevector s(1);
    maybe_apply_depolarizing(s, 0, 1.0, rng);
    if (s.probability(1) > 0.5) ++flips;
  }
  EXPECT_NEAR(flips / static_cast<double>(trials), 2.0 / 3.0, 0.05);
}

TEST(NoisyTrajectory, NoiselessModelReproducesIdealState) {
  Circuit c(2);
  c.h(0);
  c.cnot(0, 1);
  Rng rng(3);
  const auto noisy = run_noisy_trajectory(c, NoiseModel{}, rng);
  const auto ideal = run_circuit(c);
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_NEAR(std::abs(noisy.amplitude(i) - ideal.amplitude(i)), 0.0,
                1e-12);
}

TEST(NoisySampling, NoiseDegradesBellCorrelations) {
  // Ideal Bell state: outcomes 00 and 11 only.  Depolarizing noise leaks
  // probability into 01/10; more noise leaks more.
  Circuit c(2);
  c.h(0);
  c.cnot(0, 1);
  const std::size_t shots = 2000;

  const auto leakage = [&](double p) {
    Rng rng(5);
    NoiseModel noise{p, p};
    const auto counts = sample_circuit_noisy(c, {0, 1}, shots, noise, rng);
    return static_cast<double>(counts[1] + counts[2]) /
           static_cast<double>(shots);
  };
  EXPECT_DOUBLE_EQ(leakage(0.0), 0.0);
  const double low = leakage(0.02);
  const double high = leakage(0.3);
  EXPECT_GT(high, low);
  EXPECT_GT(high, 0.05);
}

TEST(NoisySampling, CountsSumToShots) {
  Circuit c(2);
  c.h(0);
  Rng rng(7);
  const auto counts =
      sample_circuit_noisy(c, {0, 1}, 500, NoiseModel{0.1, 0.1}, rng);
  std::uint64_t total = 0;
  for (auto v : counts) total += v;
  EXPECT_EQ(total, 500u);
}

TEST(NoisyTrajectory, StateStaysNormalized) {
  Circuit c(3);
  c.h(0);
  c.cnot(0, 1);
  c.cnot(1, 2);
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const auto state = run_noisy_trajectory(c, NoiseModel{0.2, 0.2}, rng);
    EXPECT_NEAR(state.norm_squared(), 1.0, 1e-10);
  }
}

}  // namespace
}  // namespace qtda
