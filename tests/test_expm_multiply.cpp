// Tests for linalg/expm_multiply.hpp: the Chebyshev exp(iθA)·x action
// against the dense eigendecomposition reference.
#include "linalg/expm_multiply.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/random.hpp"
#include "linalg/gershgorin.hpp"
#include "linalg/matrix_exp.hpp"

namespace qtda {
namespace {

/// Random sparse symmetric PSD matrix BᵀB from a sparse random B.
SparseMatrix random_sparse_psd(std::size_t n, Rng& rng) {
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < n; ++i)
    for (int e = 0; e < 3; ++e)
      triplets.push_back(
          {i, static_cast<std::size_t>(rng.uniform_index(n)),
           rng.uniform() * 2.0 - 1.0});
  return SparseMatrix::from_triplets(n, n, std::move(triplets)).gram_sparse();
}

ComplexVector random_state(std::size_t n, Rng& rng) {
  ComplexVector x(n);
  for (auto& v : x)
    v = {rng.uniform() * 2.0 - 1.0, rng.uniform() * 2.0 - 1.0};
  return x;
}

/// Dense reference y = e^{iθA}·x via the eigendecomposition oracle.
ComplexVector dense_exp_apply(const RealMatrix& a, double theta,
                              const ComplexVector& x) {
  const ComplexMatrix u = unitary_exp(a, theta);
  ComplexVector y(x.size());
  for (std::size_t r = 0; r < x.size(); ++r) {
    std::complex<double> acc{};
    for (std::size_t c = 0; c < x.size(); ++c) acc += u(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

double max_abs_diff(const ComplexVector& a, const ComplexVector& b) {
  double err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    err = std::max(err, std::abs(a[i] - b[i]));
  return err;
}

TEST(BesselSequence, MatchesKnownValues) {
  // Abramowitz & Stegun reference values at z = 1 and z = 5.
  const auto j1 = bessel_j_sequence(2, 1.0);
  EXPECT_NEAR(j1[0], 0.7651976865579666, 1e-12);
  EXPECT_NEAR(j1[1], 0.4400505857449335, 1e-12);
  EXPECT_NEAR(j1[2], 0.1149034849319005, 1e-12);
  const auto j5 = bessel_j_sequence(3, 5.0);
  EXPECT_NEAR(j5[0], -0.1775967713143383, 1e-12);
  EXPECT_NEAR(j5[1], -0.3275791375914652, 1e-12);
  EXPECT_NEAR(j5[3], 0.3648312306136620, 1e-12);
}

TEST(BesselSequence, ZeroArgumentIsKroneckerDelta) {
  const auto j = bessel_j_sequence(4, 0.0);
  EXPECT_DOUBLE_EQ(j[0], 1.0);
  for (std::size_t k = 1; k <= 4; ++k) EXPECT_DOUBLE_EQ(j[k], 0.0);
}

TEST(ExpmMultiply, MatchesDenseExponentialOnRandomMatrices) {
  Rng rng(31);
  for (std::size_t n : {8u, 21u, 64u}) {
    const SparseMatrix a = random_sparse_psd(n, rng);
    const RealMatrix ad = a.to_dense();
    const double lmax = gershgorin_max(a);
    const double lmin = gershgorin_min(a);
    const ComplexVector x = random_state(n, rng);
    for (double theta : {0.3, 1.0, 7.5}) {
      const ComplexVector y = expm_multiply(a, theta, x, lmin, lmax);
      EXPECT_LT(max_abs_diff(y, dense_exp_apply(ad, theta, x)), 1e-9)
          << "n=" << n << " theta=" << theta;
    }
  }
}

TEST(ExpmMultiply, AccurateAtLargeQpePowers) {
  // QPE needs θ = 2^{t−1}; a truncated Taylor series would have lost all
  // precision here, the Chebyshev expansion must not.
  Rng rng(47);
  const SparseMatrix a = random_sparse_psd(32, rng);
  const RealMatrix ad = a.to_dense();
  const double lmax = gershgorin_max(a);
  const double lmin = gershgorin_min(a);
  const ComplexVector x = random_state(32, rng);
  for (double theta : {32.0, 128.0}) {
    const ComplexVector y = expm_multiply(a, theta, x, lmin, lmax);
    EXPECT_LT(max_abs_diff(y, dense_exp_apply(ad, theta, x)), 1e-8)
        << "theta=" << theta;
  }
}

TEST(ExpmMultiply, NegativeThetaIsInverse) {
  Rng rng(53);
  const SparseMatrix a = random_sparse_psd(16, rng);
  const double lmax = gershgorin_max(a);
  const double lmin = gershgorin_min(a);
  const ComplexVector x = random_state(16, rng);
  const ComplexVector fwd = expm_multiply(a, 2.0, x, lmin, lmax);
  const ComplexVector back = expm_multiply(a, -2.0, fwd, lmin, lmax);
  EXPECT_LT(max_abs_diff(back, x), 1e-10);
}

TEST(SparseExpOperator, PreservesNormAndBatches) {
  Rng rng(61);
  const SparseMatrix a = random_sparse_psd(16, rng);
  const SparseExpOperator op(a, 4.0, gershgorin_min(a), gershgorin_max(a));
  EXPECT_EQ(op.dimension(), 16u);
  EXPECT_GT(op.num_terms(), 1u);

  // Unitarity: ‖e^{iθA}x‖ = ‖x‖.
  const ComplexVector x = random_state(16, rng);
  ComplexVector y(16);
  op.apply(x.data(), y.data());
  double nx = 0.0, ny = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    nx += std::norm(x[i]);
    ny += std::norm(y[i]);
  }
  EXPECT_NEAR(nx, ny, 1e-10);

  // apply_batch over packed blocks equals per-block apply.
  const std::size_t count = 7;
  ComplexVector packed(16 * count), batch_out(16 * count), one(16);
  for (auto& v : packed)
    v = {rng.uniform() * 2.0 - 1.0, rng.uniform() * 2.0 - 1.0};
  op.apply_batch(packed.data(), batch_out.data(), count);
  for (std::size_t b = 0; b < count; ++b) {
    op.apply(packed.data() + b * 16, one.data());
    for (std::size_t i = 0; i < 16; ++i)
      EXPECT_NEAR(std::abs(one[i] - batch_out[b * 16 + i]), 0.0, 1e-12);
  }
}

TEST(SparseExpOperator, LadderSharesCoefficientSetup) {
  // The QPE ladder's coefficient vectors are a pure function of
  // (θ·half-width, θ·center, tolerance): rebuilding an operator with the
  // same setup — as every shot batch, trajectory and estimate does — must
  // reuse the cached derivation, not rerun the Bessel recurrence.
  const SparseMatrix h = SparseMatrix::from_triplets(
      4, 4, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 2, 3.0}, {3, 3, 1.5}});
  const SparseExpOperator first(h, 4.0, 0.0, 6.0);
  const SparseExpOperator rebuilt(h, 4.0, 0.0, 6.0);
  EXPECT_EQ(first.coefficients(), rebuilt.coefficients());  // same object

  // Distinct powers of the ladder have distinct coefficient vectors...
  const SparseExpOperator other_power(h, 8.0, 0.0, 6.0);
  EXPECT_NE(first.coefficients(), other_power.coefficients());
  // ...but an equivalent setup reached through different (θ, bounds) with
  // equal θh and θc shares: exp(i·2θ·A) over [0, λ] ≡ exp(i·θ·A') over
  // [0, 2λ].
  const SparseExpOperator equivalent(h, 2.0, 0.0, 12.0);
  EXPECT_EQ(first.coefficients(), equivalent.coefficients());
}

TEST(ExpmMultiply, RejectsBadShapes) {
  const SparseMatrix rect(3, 4);
  EXPECT_THROW(expm_multiply(rect, 1.0, ComplexVector(4), 0.0, 1.0), Error);
  const SparseMatrix square =
      SparseMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_THROW(expm_multiply(square, 1.0, ComplexVector(3), 0.0, 1.0), Error);
  EXPECT_THROW(SparseExpOperator(square, 1.0, /*lambda_min=*/2.0,
                                 /*lambda_max=*/1.0),
               Error);
}

}  // namespace
}  // namespace qtda
