// Tests for common/parallel.hpp.
#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace qtda {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolRunBatch, VisitsEveryIndexOnceWithBarrier) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(64);
  pool.run_batch(64, [&](std::size_t i) { ++visits[i]; });
  // run_batch blocks until every slab task finished, so the counts are
  // final here without wait_idle().
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolRunBatch, EmptyBatchIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.run_batch(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolRunBatch, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_batch(16,
                     [](std::size_t i) {
                       if (i % 3 == 0) throw Error("slab task failed");
                     }),
      Error);
  pool.wait_idle();  // the pool must stay usable after the failure
  std::atomic<int> counter{0};
  pool.run_batch(8, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolRunBatch, NestedCallDegradesToSerialInsteadOfDeadlocking) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    // From inside a pool worker the barrier would wait on tasks only other
    // (possibly blocked) workers can run; it must run serially instead.
    pool.run_batch(32, [&](std::size_t) { ++counter; });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(0, n, [&](std::size_t i) { ++visits[i]; },
               /*min_parallel_size=*/1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRangeRunsSerially) {
  std::vector<int> order;
  parallel_for(0, 10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               /*min_parallel_size=*/1024);
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // serial fallback preserves order
}

TEST(ParallelForChunked, CoversRangeWithoutOverlap) {
  const std::size_t n = 12345;
  std::vector<std::atomic<int>> visits(n);
  parallel_for_chunked(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) ++visits[i];
      },
      1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          0, 100000,
          [](std::size_t i) {
            if (i == 54321) throw Error("boom");
          },
          1),
      Error);
}

TEST(ParallelReduceOrdered, MatchesSerialAndIsReproducible) {
  const std::size_t n = 50000;
  double serial = 0.0;
  for (std::size_t i = 0; i < n; ++i) serial += static_cast<double>(i) * 0.5;
  double first = 0.0, second = 0.0;
  const auto body = [](std::size_t i, double& acc) {
    acc += static_cast<double>(i) * 0.5;
  };
  const auto merge = [](double& total, double part) { total += part; };
  parallel_reduce_ordered(0, n, first, 0.0, body, merge, 1);
  parallel_reduce_ordered(0, n, second, 0.0, body, merge, 1);
  EXPECT_DOUBLE_EQ(first, second);  // fixed split + ordered merge
  EXPECT_NEAR(first, serial, 1e-6 * serial);
}

TEST(ParallelReduceSum, MatchesSerialSum) {
  const std::size_t n = 50000;
  const double parallel_total = parallel_reduce_sum(
      0, n, [](std::size_t i) { return static_cast<double>(i); }, 1);
  const double expected = static_cast<double>(n) * (n - 1) / 2.0;
  EXPECT_DOUBLE_EQ(parallel_total, expected);
}

TEST(ParallelReduceSum, EmptyRangeIsZero) {
  EXPECT_DOUBLE_EQ(
      parallel_reduce_sum(3, 3, [](std::size_t) { return 1.0; }), 0.0);
}

TEST(HardwareConcurrency, AtLeastOne) {
  EXPECT_GE(hardware_concurrency(), 1u);
}

}  // namespace
}  // namespace qtda
