// Tests for quantum/backend.hpp and the matrix-free operator path:
// StatevectorBackend vs raw Statevector, apply_operator vs apply_unitary,
// and operator gates in the circuit IR.
#include "quantum/backend.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>

#include "common/random.hpp"
#include "scoped_env.hpp"
#include "linalg/matrix_exp.hpp"
#include "quantum/density_matrix.hpp"
#include "quantum/qasm.hpp"
#include "quantum/qft.hpp"

namespace qtda {
namespace {

/// Random real symmetric matrix → random unitary e^{iH} of dimension 2^m.
ComplexMatrix random_unitary(std::size_t m, Rng& rng) {
  const std::size_t dim = std::size_t{1} << m;
  RealMatrix h(dim, dim);
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      h(i, j) = h(j, i) = rng.uniform() * 2.0 - 1.0;
  return unitary_exp(h);
}

Circuit small_circuit() {
  Circuit circuit(3);
  circuit.h(0);
  circuit.cnot(0, 1);
  circuit.ry(2, 0.7);
  append_qft(circuit, {0, 1, 2});
  return circuit;
}

double max_amp_diff(const Statevector& a, const Statevector& b) {
  double err = 0.0;
  for (std::uint64_t i = 0; i < a.dimension(); ++i)
    err = std::max(err, std::abs(a.amplitude(i) - b.amplitude(i)));
  return err;
}

TEST(SimulatorBackend, FactoryBuildsStatevector) {
  // This test pins the factory's *default* mapping, so neutralize (and
  // afterwards restore) the CI override that forces every factory call onto
  // the sharded engine.
  const testing::ScopedSimulatorEnv restore_after;
  testing::ScopedSimulatorEnv::clear();
  const auto backend = make_simulator(SimulatorKind::kStatevector, 3);
  EXPECT_EQ(backend->name(), "statevector");
  EXPECT_EQ(backend->num_qubits(), 3u);
  EXPECT_EQ(simulator_kind_name(SimulatorKind::kStatevector), "statevector");
}

TEST(SimulatorBackend, MatchesRawStatevectorOnCircuit) {
  const Circuit circuit = small_circuit();
  Statevector reference(3);
  reference.set_basis_state(5);
  reference.apply_circuit(circuit);

  StatevectorBackend backend(3);
  backend.prepare_basis_state(5);
  backend.apply_circuit(circuit);
  EXPECT_LT(max_amp_diff(backend.state(), reference), 1e-12);

  // Sampling flows through the same multinomial machinery.
  Rng rng_a(5), rng_b(5);
  const auto counts_a = backend.sample({0, 1}, 500, rng_a);
  const auto counts_b = reference.sample_counts({0, 1}, 500, rng_b);
  EXPECT_EQ(counts_a, counts_b);
  EXPECT_EQ(backend.marginal_probabilities({0, 1}),
            reference.marginal_probabilities({0, 1}));
}

TEST(SimulatorBackend, DepolarizingMatchesNoiseHelper) {
  StatevectorBackend backend(2);
  Statevector reference(2);
  Rng rng_a(9), rng_b(9);
  backend.apply_depolarizing(0, 1.0, rng_a);  // fires for sure
  maybe_apply_depolarizing(reference, 0, 1.0, rng_b);
  EXPECT_LT(max_amp_diff(backend.state(), reference), 1e-12);
}

class ApplyOperatorLayouts : public ::testing::TestWithParam<int> {};

TEST_P(ApplyOperatorLayouts, MatrixFreeEqualsDenseUnitary) {
  // Layouts: trailing contiguous targets (fast path), mid-register targets
  // (gather path), with and without a control.
  struct Case {
    std::vector<std::size_t> targets;
    std::vector<std::size_t> controls;
  };
  const Case cases[] = {
      {{3, 4}, {}},      // trailing, uncontrolled (contiguous memcpy path)
      {{3, 4}, {0}},     // trailing, controlled
      {{1, 2}, {}},      // middle of the register (strided gather)
      {{1, 3}, {0}},     // non-adjacent targets, controlled
      {{2, 1}, {4}},     // reversed target order
  };
  const Case& c = cases[GetParam()];

  Rng rng(100 + GetParam());
  const ComplexMatrix u = random_unitary(c.targets.size(), rng);

  // Random initial state on 5 qubits.
  std::vector<Amplitude> amps(32);
  for (auto& a : amps)
    a = {rng.uniform() * 2.0 - 1.0, rng.uniform() * 2.0 - 1.0};
  Statevector dense_state(5), op_state(5);
  dense_state.set_amplitudes(amps);
  dense_state.normalize();
  op_state.set_amplitudes(dense_state.amplitudes());

  dense_state.apply_unitary(u, c.targets, c.controls);
  const DenseOperator op(u);
  op_state.apply_operator(op, c.targets, c.controls);
  EXPECT_LT(max_amp_diff(op_state, dense_state), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Layouts, ApplyOperatorLayouts,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(OperatorGate, CircuitIrRoundTrip) {
  const auto op = std::make_shared<DenseOperator>(ComplexMatrix::identity(4));
  Circuit circuit(4);
  circuit.operator_gate(op, {2, 3}, {0});
  EXPECT_EQ(circuit.gate_count(), 1u);
  EXPECT_EQ(circuit.gates()[0].kind, GateKind::kOperator);
  EXPECT_EQ(gate_kind_name(GateKind::kOperator), "Op");
  EXPECT_GE(circuit.depth(), 1u);
  EXPECT_EQ(circuit.two_qubit_gate_count(), 1u);

  // controlled_on stacks another control on the operator gate.
  const Circuit controlled = circuit.controlled_on(1);
  EXPECT_EQ(controlled.gates()[0].controls.size(), 2u);

  // Identity operator leaves any state unchanged.
  Statevector state(4);
  state.set_basis_state(9);
  state.apply_circuit(controlled);
  EXPECT_NEAR(std::abs(state.amplitude(9)), 1.0, 1e-12);
}

TEST(OperatorGate, ValidationAndUnsupportedConsumers) {
  const auto op = std::make_shared<DenseOperator>(ComplexMatrix::identity(4));
  Circuit circuit(3);
  // Dimension mismatch: 2-dim op on a 2-qubit target list.
  EXPECT_THROW(circuit.operator_gate(
                   std::make_shared<DenseOperator>(ComplexMatrix::identity(2)),
                   {0, 1}),
               Error);
  // Missing operator.
  Gate bad;
  bad.kind = GateKind::kOperator;
  bad.targets = {0, 1};
  EXPECT_THROW(circuit.append(bad), Error);

  circuit.operator_gate(op, {1, 2});
  EXPECT_THROW(circuit.gates()[0].single_qubit_matrix(), Error);
  EXPECT_THROW(to_qasm(circuit), Error);
  // Operator gates are no longer statevector-only: the density-matrix
  // engine applies them matrix-free on both registers (identity op ⇒ ρ
  // unchanged).
  DensityMatrix rho(3);
  EXPECT_NO_THROW(rho.apply_circuit(circuit));
  EXPECT_NEAR(std::abs(rho.element(0, 0) - Amplitude{1.0, 0.0}), 0.0, 1e-12);
}

TEST(SimulatorBackend, DensityMatrixWidthGuardFailsFast) {
  const testing::ScopedSimulatorEnv restore_after;
  testing::ScopedSimulatorEnv::clear();
  // Direct selection beyond the 4^n cap: rejected in the factory with the
  // cap named, before any storage is touched.
  try {
    make_simulator(SimulatorKind::kDensityMatrix, 14);
    FAIL() << "expected the width guard to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("density-matrix"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("13"), std::string::npos);
  }
  // Within the cap the factory builds the engine (small width: a 13-qubit
  // ρ would allocate 4^13 amplitudes ≈ 1 GB just to check a name).
  EXPECT_EQ(make_simulator(SimulatorKind::kDensityMatrix, 4)->name(),
            "density-matrix");
}

TEST(SimulatorBackend, EnvForcedDensityMatrixNamesTheVariable) {
  const testing::ScopedSimulatorEnv restore_after;
  testing::ScopedSimulatorEnv::clear();
  setenv("QTDA_SIMULATOR", "density-matrix", 1);
  try {
    make_simulator(SimulatorKind::kStatevector, 14);
    FAIL() << "expected the width guard to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("QTDA_SIMULATOR"), std::string::npos)
        << e.what();
  }
  // A width inside the cap is forced onto the density engine as requested.
  EXPECT_EQ(make_simulator(SimulatorKind::kStatevector, 3)->name(),
            "density-matrix");
}

TEST(SimulatorBackend, MalformedEnvOverridesNameTheVariable) {
  const testing::ScopedSimulatorEnv restore_after;
  testing::ScopedSimulatorEnv::clear();
  setenv("QTDA_SIMULATOR", "no-such-engine", 1);
  try {
    make_simulator(SimulatorKind::kStatevector, 3);
    FAIL() << "expected the simulator parse to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("QTDA_SIMULATOR"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("statevector"), std::string::npos);
  }
  testing::ScopedSimulatorEnv::clear();
  for (const char* bad : {"abc", "3x", "", "-2", "0"}) {
    if (*bad == '\0') continue;  // empty means "unset" by contract
    setenv("QTDA_SHARDS", bad, 1);
    try {
      make_simulator(SimulatorKind::kShardedStatevector, 3);
      FAIL() << "expected QTDA_SHARDS=" << bad << " to throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("QTDA_SHARDS"), std::string::npos)
          << e.what();
    }
  }
}

}  // namespace
}  // namespace qtda
