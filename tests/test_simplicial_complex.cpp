// Tests for topology/simplicial_complex.hpp.
#include "topology/simplicial_complex.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace qtda {
namespace {

SimplicialComplex filled_triangle() {
  return SimplicialComplex::from_simplices({Simplex{0, 1, 2}},
                                           /*close_downward=*/true);
}

TEST(SimplicialComplex, DownwardClosureGeneratesFaces) {
  const auto complex = filled_triangle();
  EXPECT_EQ(complex.count(0), 3u);
  EXPECT_EQ(complex.count(1), 3u);
  EXPECT_EQ(complex.count(2), 1u);
  EXPECT_EQ(complex.max_dimension(), 2);
  EXPECT_EQ(complex.total_count(), 7u);
}

TEST(SimplicialComplex, UnclosedInputThrows) {
  EXPECT_THROW(SimplicialComplex::from_simplices({Simplex{0, 1}},
                                                 /*close_downward=*/false),
               Error);
}

TEST(SimplicialComplex, ClosedInputAccepted) {
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{0}, Simplex{1}, Simplex{0, 1}}, /*close_downward=*/false);
  EXPECT_EQ(complex.count(0), 2u);
  EXPECT_EQ(complex.count(1), 1u);
  EXPECT_FALSE(complex.find_missing_face().has_value());
}

TEST(SimplicialComplex, SimplicesSortedLexicographically) {
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{2, 3}, Simplex{1, 2}, Simplex{1, 3}}, true);
  const auto& edges = complex.simplices(1);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Simplex{1, 2}));
  EXPECT_EQ(edges[1], (Simplex{1, 3}));
  EXPECT_EQ(edges[2], (Simplex{2, 3}));
}

TEST(SimplicialComplex, IndexOfMatchesPosition) {
  const auto complex = filled_triangle();
  const auto& edges = complex.simplices(1);
  for (std::size_t i = 0; i < edges.size(); ++i)
    EXPECT_EQ(complex.index_of(edges[i]), i);
  EXPECT_FALSE(complex.index_of(Simplex{0, 9}).has_value());
}

TEST(SimplicialComplex, ContainsMembership) {
  const auto complex = filled_triangle();
  EXPECT_TRUE(complex.contains(Simplex{0, 1, 2}));
  EXPECT_TRUE(complex.contains(Simplex{1, 2}));
  EXPECT_FALSE(complex.contains(Simplex{0, 3}));
}

TEST(SimplicialComplex, DuplicateInsertIsIdempotent) {
  SimplicialComplex complex;
  complex.insert_with_faces(Simplex{0, 1});
  complex.insert_with_faces(Simplex{0, 1});
  EXPECT_EQ(complex.count(1), 1u);
  EXPECT_EQ(complex.count(0), 2u);
}

TEST(SimplicialComplex, OutOfRangeDimensionIsEmpty) {
  const auto complex = filled_triangle();
  EXPECT_EQ(complex.count(5), 0u);
  EXPECT_TRUE(complex.simplices(5).empty());
  EXPECT_EQ(complex.count(-1), 0u);
}

TEST(SimplicialComplex, EmptyComplex) {
  SimplicialComplex complex;
  EXPECT_EQ(complex.max_dimension(), -1);
  EXPECT_EQ(complex.total_count(), 0u);
  EXPECT_EQ(complex.euler_characteristic(), 0);
}

TEST(SimplicialComplex, EulerCharacteristic) {
  // Filled triangle: 3 − 3 + 1 = 1 (contractible).
  EXPECT_EQ(filled_triangle().euler_characteristic(), 1);
  // Hollow triangle (circle): 3 − 3 = 0.
  const auto hollow = SimplicialComplex::from_simplices(
      {Simplex{0, 1}, Simplex{1, 2}, Simplex{0, 2}}, true);
  EXPECT_EQ(hollow.euler_characteristic(), 0);
}

TEST(SimplicialComplex, PaperWorkedExampleCounts) {
  // K from Eq. (13): 5 vertices, 6 edges, 1 triangle.
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{1, 2, 3}, Simplex{3, 4}, Simplex{3, 5}, Simplex{4, 5}}, true);
  EXPECT_EQ(complex.count(0), 5u);
  EXPECT_EQ(complex.count(1), 6u);
  EXPECT_EQ(complex.count(2), 1u);
}

}  // namespace
}  // namespace qtda
