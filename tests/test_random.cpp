// Tests for common/random.hpp: determinism, distribution moments, splitting.
#include "common/random.hpp"

#include "common/error.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace qtda {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() != b.next()) ++differences;
  EXPECT_GT(differences, 60);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexIsRoughlyUniform) {
  Rng rng(19);
  const std::uint64_t buckets = 10;
  std::vector<int> counts(buckets, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(buckets)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalShifted) {
  Rng rng(31);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

struct BinomialCase {
  std::uint64_t n;
  double p;
};

class BinomialMoments : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialMoments, MatchesTheory) {
  const auto [n, p] = GetParam();
  Rng rng(43 + n);
  const int reps = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < reps; ++i) {
    const auto k = static_cast<double>(rng.binomial(n, p));
    EXPECT_LE(k, static_cast<double>(n));
    sum += k;
    sum_sq += k * k;
  }
  const double mean = sum / reps;
  const double var = sum_sq / reps - mean * mean;
  const double expect_mean = static_cast<double>(n) * p;
  const double expect_var = expect_mean * (1.0 - p);
  const double mean_tol = 6.0 * std::sqrt(expect_var / reps) + 1e-9;
  EXPECT_NEAR(mean, expect_mean, std::max(mean_tol, 0.02 * expect_mean));
  if (expect_var > 1.0) {
    EXPECT_NEAR(var / expect_var, 1.0, 0.15);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialMoments,
    ::testing::Values(BinomialCase{10, 0.5}, BinomialCase{100, 0.1},
                      BinomialCase{1000, 0.01}, BinomialCase{1000, 0.9},
                      BinomialCase{100000, 0.001},
                      BinomialCase{1000000, 0.1},
                      BinomialCase{1000000, 0.0001}));

TEST(Rng, BinomialDegenerateCases) {
  Rng rng(47);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(53);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int diff = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() != b.next()) ++diff;
  EXPECT_GT(diff, 60);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(59), p2(59);
  Rng a = p1.split(5);
  Rng b = p2.split(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, PermutationIsValid) {
  Rng rng(61);
  for (std::size_t n : {1u, 2u, 10u, 100u}) {
    auto perm = rng.permutation(n);
    std::sort(perm.begin(), perm.end());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(perm[i], i);
  }
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(67);
  std::vector<int> v{1, 2, 2, 3, 5, 8};
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace qtda
