// Tests for quantum/statevector.hpp: kernels against dense linear algebra.
#include "quantum/statevector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "linalg/matrix_ops.hpp"
#include "quantum/gates.hpp"

namespace qtda {
namespace {

ComplexMatrix random_unitary2(Rng& rng) {
  // Haar-ish 2×2 unitary from random rotations (enough for kernel tests).
  return matmul(gates::RZ(rng.uniform(0.0, 6.28)),
                matmul(gates::RY(rng.uniform(0.0, 3.14)),
                       gates::RZ(rng.uniform(0.0, 6.28))));
}

/// Dense reference: expands a single-qubit gate to the full register with
/// MSB-first ordering.
ComplexMatrix expand_single(const ComplexMatrix& u, std::size_t target,
                            std::size_t n) {
  ComplexMatrix full = ComplexMatrix::identity(1);
  for (std::size_t q = 0; q < n; ++q)
    full = kronecker(full, q == target ? u : ComplexMatrix::identity(2));
  return full;
}

TEST(Statevector, InitialStateIsZeroKet) {
  Statevector s(3);
  EXPECT_EQ(s.dimension(), 8u);
  EXPECT_NEAR(std::abs(s.amplitude(0) - Amplitude{1.0, 0.0}), 0.0, 1e-15);
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-15);
}

TEST(Statevector, SetBasisState) {
  Statevector s(2);
  s.set_basis_state(2);
  EXPECT_DOUBLE_EQ(s.probability(2), 1.0);
  EXPECT_DOUBLE_EQ(s.probability(0), 0.0);
  EXPECT_THROW(s.set_basis_state(4), Error);
}

TEST(Statevector, HadamardOnQubit0SplitsMsb) {
  // Qubit 0 is the MSB: H(0) on |00⟩ gives (|00⟩ + |10⟩)/√2.
  Statevector s(2);
  s.apply_single_qubit(gates::H(), 0);
  EXPECT_NEAR(s.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(s.probability(2), 0.5, 1e-12);
  EXPECT_NEAR(s.probability(1), 0.0, 1e-12);
}

TEST(Statevector, HadamardOnQubit1SplitsLsb) {
  Statevector s(2);
  s.apply_single_qubit(gates::H(), 1);
  EXPECT_NEAR(s.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(s.probability(1), 0.5, 1e-12);
}

TEST(Statevector, XFlipsCorrectBit) {
  Statevector s(3);
  s.apply_single_qubit(gates::X(), 2);  // LSB
  EXPECT_DOUBLE_EQ(s.probability(1), 1.0);
  s.apply_single_qubit(gates::X(), 0);  // MSB
  EXPECT_DOUBLE_EQ(s.probability(0b101), 1.0);
}

TEST(Statevector, ControlledGateOnlyFiresWhenControlSet) {
  Statevector s(2);
  // CNOT(0→1) on |00⟩ does nothing.
  s.apply_single_qubit(gates::X(), 1, {0});
  EXPECT_DOUBLE_EQ(s.probability(0), 1.0);
  // Set control, then CNOT flips target.
  s.apply_single_qubit(gates::X(), 0);
  s.apply_single_qubit(gates::X(), 1, {0});
  EXPECT_DOUBLE_EQ(s.probability(3), 1.0);
}

TEST(Statevector, BellStateFromHAndCnot) {
  Statevector s(2);
  s.apply_single_qubit(gates::H(), 0);
  s.apply_single_qubit(gates::X(), 1, {0});
  EXPECT_NEAR(s.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(s.probability(3), 0.5, 1e-12);
  EXPECT_NEAR(s.probability(1), 0.0, 1e-12);
  EXPECT_NEAR(s.probability(2), 0.0, 1e-12);
}

class SingleQubitKernel : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SingleQubitKernel, MatchesDenseReference) {
  const std::size_t n = 4;
  const std::size_t target = GetParam();
  Rng rng(100 + target);
  const auto u = random_unitary2(rng);

  // Random initial state.
  std::vector<Amplitude> amps(1 << n);
  for (auto& a : amps) a = {rng.normal(), rng.normal()};
  Statevector s(n);
  s.set_amplitudes(amps);
  s.normalize();
  const auto reference_in = s.amplitudes();

  s.apply_single_qubit(u, target);

  const auto full = expand_single(u, target, n);
  const auto expected = matvec(full, reference_in);
  for (std::size_t i = 0; i < amps.size(); ++i)
    EXPECT_NEAR(std::abs(s.amplitudes()[i] - expected[i]), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Targets, SingleQubitKernel,
                         ::testing::Values(0, 1, 2, 3));

TEST(Statevector, DenseUnitaryMatchesKroneckerReference) {
  // Two-qubit unitary on targets {1, 2} of a 3-qubit register.
  Rng rng(7);
  const auto u2 = kronecker(random_unitary2(rng), random_unitary2(rng));
  std::vector<Amplitude> amps(8);
  for (auto& a : amps) a = {rng.normal(), rng.normal()};
  Statevector s(3);
  s.set_amplitudes(amps);
  s.normalize();
  const auto input = s.amplitudes();

  s.apply_unitary(u2, {1, 2});

  // Reference: I ⊗ u2 (qubit 0 untouched, MSB-first).
  const auto full = kronecker(ComplexMatrix::identity(2), u2);
  const auto expected = matvec(full, input);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(std::abs(s.amplitudes()[i] - expected[i]), 0.0, 1e-12);
}

TEST(Statevector, DenseUnitaryTargetOrderIsMsbFirst) {
  // A CNOT-like matrix applied to targets {0, 1} vs {1, 0} must differ:
  // the first listed target is the most significant local bit.
  ComplexMatrix cnot(4, 4);
  cnot(0, 0) = 1.0;
  cnot(1, 1) = 1.0;
  cnot(2, 3) = 1.0;
  cnot(3, 2) = 1.0;
  Statevector a(2);
  a.set_basis_state(0b10);  // qubit0 = 1
  a.apply_unitary(cnot, {0, 1});
  EXPECT_DOUBLE_EQ(a.probability(0b11), 1.0);  // control=qubit0 fires

  Statevector b(2);
  b.set_basis_state(0b10);
  b.apply_unitary(cnot, {1, 0});  // control is now qubit1 (=0)
  EXPECT_DOUBLE_EQ(b.probability(0b10), 1.0);
}

TEST(Statevector, ControlledDenseUnitary) {
  Rng rng(9);
  const auto u = random_unitary2(rng);
  Statevector s(3);
  s.set_basis_state(0b001);  // control qubit 2 set
  s.apply_unitary(u, {1}, {2});
  // Target qubit 1 now in superposition determined by u column 0.
  EXPECT_NEAR(s.probability(0b001), std::norm(u(0, 0)), 1e-12);
  EXPECT_NEAR(s.probability(0b011), std::norm(u(1, 0)), 1e-12);
}

TEST(Statevector, GlobalPhasePreservesProbabilities) {
  Statevector s(2);
  s.apply_single_qubit(gates::H(), 0);
  const auto before = s.probabilities();
  s.apply_global_phase(1.234);
  const auto after = s.probabilities();
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_NEAR(before[i], after[i], 1e-14);
  EXPECT_NEAR(std::arg(s.amplitude(0)), 1.234, 1e-12);
}

TEST(Statevector, MarginalProbabilities) {
  Statevector s(3);
  s.apply_single_qubit(gates::H(), 0);
  s.apply_single_qubit(gates::X(), 2);
  // Marginal over qubit 2 alone: always 1.
  const auto m2 = s.marginal_probabilities({2});
  EXPECT_NEAR(m2[1], 1.0, 1e-12);
  // Marginal over qubit 0: uniform.
  const auto m0 = s.marginal_probabilities({0});
  EXPECT_NEAR(m0[0], 0.5, 1e-12);
  EXPECT_NEAR(m0[1], 0.5, 1e-12);
  // Joint over {0, 2} (qubit 0 is the MSB of the outcome).
  const auto m02 = s.marginal_probabilities({0, 2});
  EXPECT_NEAR(m02[0b01], 0.5, 1e-12);
  EXPECT_NEAR(m02[0b11], 0.5, 1e-12);
}

TEST(Statevector, SampleCountsConcentrateOnSupport) {
  Statevector s(2);
  s.apply_single_qubit(gates::H(), 0);
  Rng rng(11);
  const auto counts = s.sample_counts({0, 1}, 10000, rng);
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[3], 0u);
  EXPECT_EQ(counts[0] + counts[2], 10000u);
  EXPECT_NEAR(static_cast<double>(counts[0]), 5000.0, 300.0);
}

TEST(Statevector, NormalizeAndInnerProduct) {
  Statevector a(1), b(1);
  a.set_amplitudes({{3.0, 0.0}, {4.0, 0.0}});
  a.normalize();
  EXPECT_NEAR(a.norm_squared(), 1.0, 1e-14);
  b.set_basis_state(0);
  EXPECT_NEAR(std::abs(a.inner_product(b)) , 0.6, 1e-12);
}

TEST(Statevector, LargeRegisterParallelPathConsistent) {
  // Exercise the OpenMP path (2^16 amplitudes) against small-state logic.
  const std::size_t n = 16;
  Statevector s(n);
  for (std::size_t q = 0; q < n; ++q) s.apply_single_qubit(gates::H(), q);
  EXPECT_NEAR(s.norm_squared(), 1.0, 1e-10);
  const double expected = 1.0 / static_cast<double>(s.dimension());
  EXPECT_NEAR(s.probability(0), expected, 1e-12);
  EXPECT_NEAR(s.probability(s.dimension() - 1), expected, 1e-12);
}

TEST(MultinomialSample, TotalsAndDeterminism) {
  Rng a(13), b(13);
  const std::vector<double> dist{0.1, 0.2, 0.3, 0.4};
  const auto c1 = multinomial_sample(dist, 1000, a);
  const auto c2 = multinomial_sample(dist, 1000, b);
  EXPECT_EQ(c1, c2);
  std::uint64_t total = 0;
  for (auto c : c1) total += c;
  EXPECT_EQ(total, 1000u);
}

TEST(MultinomialSample, RejectsInvalidDistributions) {
  Rng rng(1);
  EXPECT_THROW(multinomial_sample({}, 10, rng), Error);
  EXPECT_THROW(multinomial_sample({0.0, 0.0}, 10, rng), Error);
  EXPECT_THROW(multinomial_sample({-0.5, 1.5}, 10, rng), Error);
}

}  // namespace
}  // namespace qtda
