// Tests for linalg/symmetric_eigen.hpp and linalg/gershgorin.hpp.
#include "linalg/symmetric_eigen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "linalg/gershgorin.hpp"
#include "linalg/matrix_ops.hpp"

namespace qtda {
namespace {

RealMatrix random_symmetric(std::size_t n, Rng& rng) {
  RealMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = rng.uniform(-2.0, 2.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

TEST(SymmetricEigen, DiagonalMatrix) {
  RealMatrix d(3, 3);
  d(0, 0) = 3.0;
  d(1, 1) = -1.0;
  d(2, 2) = 2.0;
  const auto result = symmetric_eigen(d);
  ASSERT_EQ(result.values.size(), 3u);
  EXPECT_NEAR(result.values[0], -1.0, 1e-12);
  EXPECT_NEAR(result.values[1], 2.0, 1e-12);
  EXPECT_NEAR(result.values[2], 3.0, 1e-12);
}

TEST(SymmetricEigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const auto values = symmetric_eigenvalues(RealMatrix{{2, 1}, {1, 2}});
  EXPECT_NEAR(values[0], 1.0, 1e-12);
  EXPECT_NEAR(values[1], 3.0, 1e-12);
}

TEST(SymmetricEigen, OneByOne) {
  const auto values = symmetric_eigenvalues(RealMatrix{{5.0}});
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values[0], 5.0);
}

TEST(SymmetricEigen, NonSymmetricThrows) {
  EXPECT_THROW(symmetric_eigen(RealMatrix{{1, 2}, {3, 4}}), Error);
  EXPECT_THROW(symmetric_eigen(RealMatrix(2, 3)), Error);
}

class EigenReconstruction : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenReconstruction, FactorizationHolds) {
  Rng rng(GetParam());
  const std::size_t n = GetParam();
  const RealMatrix a = random_symmetric(n, rng);
  const auto result = symmetric_eigen(a);
  // A·v_j = λ_j·v_j for each column.
  for (std::size_t j = 0; j < n; ++j) {
    RealVector v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = result.vectors(i, j);
    const auto av = matvec(a, v);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(av[i], result.values[j] * v[i], 1e-8);
  }
  // Eigenvalues ascending.
  EXPECT_TRUE(std::is_sorted(result.values.begin(), result.values.end()));
  // V orthonormal.
  const auto vtv = matmul(transpose(result.vectors), result.vectors);
  EXPECT_LT(max_abs_diff(vtv, RealMatrix::identity(n)), 1e-9);
  // Trace preserved.
  double eigen_sum = 0.0;
  for (double v : result.values) eigen_sum += v;
  EXPECT_NEAR(eigen_sum, trace(a), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenReconstruction,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64));

TEST(SymmetricEigen, PositiveSemidefiniteGram) {
  Rng rng(99);
  RealMatrix b(6, 4);
  for (std::size_t i = 0; i < b.size(); ++i)
    b.data()[i] = rng.uniform(-1.0, 1.0);
  const auto gram = matmul(transpose(b), b);
  const auto values = symmetric_eigenvalues(gram);
  for (double v : values) EXPECT_GE(v, -1e-10);
}

TEST(CountZeroEigenvalues, RankDeficientMatrix) {
  // Projector onto span{(1,1)/√2} has eigenvalues {0, 1}.
  RealMatrix p{{0.5, 0.5}, {0.5, 0.5}};
  EXPECT_EQ(count_zero_eigenvalues(p), 1u);
}

TEST(CountZeroEigenvalues, ZeroMatrix) {
  EXPECT_EQ(count_zero_eigenvalues(RealMatrix(4, 4)), 4u);
}

TEST(CountZeroEigenvalues, FullRankMatrix) {
  EXPECT_EQ(count_zero_eigenvalues(RealMatrix::identity(5)), 0u);
}

TEST(Gershgorin, BoundsContainSpectrum) {
  Rng rng(101);
  for (int rep = 0; rep < 20; ++rep) {
    const RealMatrix a = random_symmetric(8, rng);
    const auto values = symmetric_eigenvalues(a);
    EXPECT_LE(values.back(), gershgorin_max(a) + 1e-10);
    EXPECT_GE(values.front(), gershgorin_min(a) - 1e-10);
  }
}

TEST(Gershgorin, DiagonalIsExact) {
  RealMatrix d(2, 2);
  d(0, 0) = -3.0;
  d(1, 1) = 7.0;
  EXPECT_DOUBLE_EQ(gershgorin_max(d), 7.0);
  EXPECT_DOUBLE_EQ(gershgorin_min(d), -3.0);
}

TEST(Gershgorin, WorkedExampleLambdaMax) {
  // The paper's Δ1 (Eq. 17) has Gershgorin bound 6 (row 4: 2 + |−1|+|−1|+1+|−1|).
  RealMatrix delta1{{3, 0, 0, 0, 0, 0},  {0, 3, 0, -1, -1, 0},
                    {0, 0, 3, -1, -1, 0}, {0, -1, -1, 2, 1, -1},
                    {0, -1, -1, 1, 2, 1}, {0, 0, 0, -1, 1, 2}};
  EXPECT_DOUBLE_EQ(gershgorin_max(delta1), 6.0);
}

TEST(Gershgorin, DiscsCount) {
  EXPECT_EQ(gershgorin_discs(RealMatrix::identity(4)).size(), 4u);
  EXPECT_THROW(gershgorin_discs(RealMatrix(2, 3)), Error);
}

}  // namespace
}  // namespace qtda
