// The sharded engine's contract: ShardedStatevector and
// ShardedStatevectorBackend must be *bit-identical* to the dense engine —
// same amplitudes after randomized circuits, same marginals, same samples —
// for every shard count, including counts that do not divide the dimension.
#include "quantum/sharded_statevector.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "common/random.hpp"
#include "scoped_env.hpp"
#include "core/betti_estimator.hpp"
#include "linalg/expm_multiply.hpp"
#include "linalg/matrix_exp.hpp"
#include "quantum/backend.hpp"
#include "quantum/statevector.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

namespace qtda {
namespace {

const std::size_t kShardCounts[] = {1, 2, 3, 8};  // non-power-of-two included

ComplexMatrix random_unitary(std::size_t m, Rng& rng) {
  const std::size_t dim = std::size_t{1} << m;
  RealMatrix h(dim, dim);
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      h(i, j) = h(j, i) = rng.uniform() * 2.0 - 1.0;
  return unitary_exp(h);
}

std::vector<std::size_t> distinct_qubits(std::size_t count, std::size_t q,
                                         Rng& rng) {
  std::vector<std::size_t> all = rng.permutation(q);
  all.resize(count);
  return all;
}

/// A circuit mixing every gate family the IR knows: named single-qubit
/// gates, rotations, controlled named gates, dense two-qubit unitaries
/// (controlled and not), and matrix-free operator gates (both the strided
/// gather path and, for q ≥ 3, the contiguous trailing-target fast path via
/// a Chebyshev exponential).
Circuit random_circuit(std::size_t q, Rng& rng) {
  Circuit circuit(q);
  const std::size_t gates = 24 + 3 * q;
  for (std::size_t g = 0; g < gates; ++g) {
    switch (rng.uniform_index(q >= 2 ? 10 : 5)) {
      case 0: circuit.h(rng.uniform_index(q)); break;
      case 1: circuit.rx(rng.uniform_index(q), rng.uniform(-3.0, 3.0)); break;
      case 2: circuit.ry(rng.uniform_index(q), rng.uniform(-3.0, 3.0)); break;
      case 3: circuit.rz(rng.uniform_index(q), rng.uniform(-3.0, 3.0)); break;
      case 4: circuit.phase(rng.uniform_index(q), rng.uniform(-3.0, 3.0)); break;
      case 5: {
        const auto w = distinct_qubits(2, q, rng);
        circuit.cnot(w[0], w[1]);
        break;
      }
      case 6: {
        const auto w = distinct_qubits(2, q, rng);
        circuit.controlled_phase(w[0], w[1], rng.uniform(-3.0, 3.0));
        break;
      }
      case 7: {
        const auto w = distinct_qubits(2, q, rng);
        circuit.swap(w[0], w[1]);
        break;
      }
      case 8: {
        const auto w = distinct_qubits(q >= 3 ? 3 : 2, q, rng);
        const ComplexMatrix u = random_unitary(2, rng);
        if (w.size() == 3) {
          circuit.unitary(u, {w[0], w[1]}, {w[2]});
        } else {
          circuit.unitary(u, {w[0], w[1]});
        }
        break;
      }
      default: {
        const auto w = distinct_qubits(2, q, rng);
        circuit.operator_gate(
            std::make_shared<DenseOperator>(random_unitary(2, rng)),
            {w[0], w[1]});
        break;
      }
    }
  }
  if (q >= 3) {
    // Trailing contiguous targets: the segmented-memcpy gather path, with a
    // control so the block-column enumeration is exercised too.
    std::vector<Triplet> triplets;
    for (std::size_t i = 0; i < 4; ++i) {
      triplets.push_back({i, i, rng.uniform(0.0, 2.0)});
      if (i + 1 < 4) {
        const double v = rng.uniform(-1.0, 1.0);
        triplets.push_back({i, i + 1, v});
        triplets.push_back({i + 1, i, v});
      }
    }
    auto h = std::make_shared<const SparseMatrix>(
        SparseMatrix::from_triplets(4, 4, std::move(triplets)));
    circuit.operator_gate(
        std::make_shared<SparseExpOperator>(h, 1.0, -4.0, 6.0),
        {q - 2, q - 1}, {0});
  }
  circuit.add_global_phase(rng.uniform(-1.0, 1.0));
  return circuit;
}

std::vector<Amplitude> random_state(std::size_t q, Rng& rng) {
  std::vector<Amplitude> amps(std::size_t{1} << q);
  for (auto& a : amps)
    a = {rng.uniform() * 2.0 - 1.0, rng.uniform() * 2.0 - 1.0};
  Statevector normalizer(q);
  normalizer.set_amplitudes(amps);
  normalizer.normalize();
  return normalizer.amplitudes();
}

std::size_t count_mismatches(const std::vector<Amplitude>& a,
                             const std::vector<Amplitude>& b) {
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) ++mismatches;
  return mismatches;
}

class ShardedEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedEquivalence, RandomCircuitIsBitIdenticalForEveryShardCount) {
  const std::size_t q = GetParam();
  Rng rng(1000 + q);
  const Circuit circuit = random_circuit(q, rng);
  const std::vector<Amplitude> initial = random_state(q, rng);

  Statevector dense(q);
  dense.set_amplitudes(initial);
  dense.apply_circuit(circuit);

  for (std::size_t shards : kShardCounts) {
    ShardedStatevector sharded(q, shards);
    sharded.set_amplitudes(initial);
    sharded.apply_circuit(circuit);
    EXPECT_EQ(count_mismatches(sharded.amplitudes(), dense.amplitudes()), 0u)
        << "q=" << q << " shards=" << shards;

    // Marginals over a mixed qubit subset are the same doubles, so samples
    // from identically seeded generators are the same counts.
    std::vector<std::size_t> measured{0};
    if (q >= 3) measured.push_back(q - 2);
    if (q >= 2) measured.push_back(q - 1);
    EXPECT_EQ(sharded.marginal_probabilities(measured),
              dense.marginal_probabilities(measured))
        << "q=" << q << " shards=" << shards;
    Rng rng_a(7), rng_b(7);
    EXPECT_EQ(sharded.sample_counts(measured, 2000, rng_a),
              dense.sample_counts(measured, 2000, rng_b))
        << "q=" << q << " shards=" << shards;
    EXPECT_DOUBLE_EQ(sharded.norm_squared(), dense.norm_squared());
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ShardedEquivalence,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(ShardedStatevector, LayoutClampsAndPartitionsBalanced) {
  ShardedStatevector state(3, 3);  // dim 8 over 3 slabs: 2/3/3 split
  EXPECT_EQ(state.num_shards(), 3u);
  EXPECT_EQ(state.slab_begin(0), 0u);
  EXPECT_EQ(state.slab_begin(3), 8u);
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_LT(state.slab_begin(s), state.slab_begin(s + 1));
  EXPECT_EQ(state.amplitude(0), (Amplitude{1.0, 0.0}));

  // More shards than amplitudes clamps to one amplitude per slab.
  ShardedStatevector tiny(1, 64);
  EXPECT_EQ(tiny.num_shards(), 2u);
  EXPECT_THROW(ShardedStatevector(3, 0), Error);
}

TEST(ShardedStatevector, BasisStatePreparationAndGlobalPhase) {
  ShardedStatevector state(4, 3);
  state.set_basis_state(11);
  EXPECT_EQ(state.amplitude(11), (Amplitude{1.0, 0.0}));
  EXPECT_EQ(state.amplitude(0), (Amplitude{0.0, 0.0}));

  Statevector dense(4);
  dense.set_basis_state(11);
  dense.apply_global_phase(0.77);
  state.apply_global_phase(0.77);
  EXPECT_EQ(count_mismatches(state.amplitudes(), dense.amplitudes()), 0u);
}

TEST(ShardedStatevector, MarginalValidatesAllQubitsBeforeBuildingMasks) {
  // An out-of-range wire anywhere in the list must throw — on both engines —
  // before any mask shift is computed (the shift itself would be UB).
  ShardedStatevector sharded(3, 2);
  Statevector dense(3);
  EXPECT_THROW(sharded.marginal_probabilities({0, 99}), Error);
  EXPECT_THROW(dense.marginal_probabilities({0, 99}), Error);
  EXPECT_THROW(sharded.marginal_probabilities({99, 0}), Error);
  EXPECT_THROW(dense.marginal_probabilities({99, 0}), Error);
}

TEST(ShardedStatevector, SamplingIsDeterministicForFixedSeed) {
  Rng rng(42);
  const Circuit circuit = random_circuit(6, rng);
  ShardedStatevector a(6, 3), b(6, 3);
  a.apply_circuit(circuit);
  b.apply_circuit(circuit);
  Rng rng_a(123), rng_b(123);
  EXPECT_EQ(a.sample_counts({0, 1, 2}, 5000, rng_a),
            b.sample_counts({0, 1, 2}, 5000, rng_b));
}

TEST(ShardedBackend, FactoryNameAndParserRoundTrip) {
  const auto backend =
      make_simulator(SimulatorKind::kShardedStatevector, 3, 2);
  EXPECT_EQ(backend->name(), "sharded-statevector");
  EXPECT_EQ(backend->num_qubits(), 3u);
  EXPECT_EQ(simulator_kind_name(SimulatorKind::kShardedStatevector),
            "sharded-statevector");
  for (SimulatorKind kind : {SimulatorKind::kStatevector,
                             SimulatorKind::kShardedStatevector}) {
    EXPECT_EQ(simulator_kind_from_name(simulator_kind_name(kind)), kind);
  }
  try {
    simulator_kind_from_name("qpu");
    FAIL() << "expected an Error for an unknown simulator name";
  } catch (const Error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("statevector"), std::string::npos);
    EXPECT_NE(message.find("sharded-statevector"), std::string::npos);
  }
}

TEST(ShardedBackend, EnvironmentOverrideForcesEngine) {
  const testing::ScopedSimulatorEnv restore_after;
  ASSERT_EQ(setenv("QTDA_SIMULATOR", "sharded-statevector", 1), 0);
  ASSERT_EQ(setenv("QTDA_SHARDS", "2", 1), 0);
  const auto forced = make_simulator(SimulatorKind::kStatevector, 3);
  EXPECT_EQ(forced->name(), "sharded-statevector");
  testing::ScopedSimulatorEnv::clear();
  const auto unforced = make_simulator(SimulatorKind::kStatevector, 3);
  EXPECT_EQ(unforced->name(), "statevector");
}

TEST(ShardedBackend, DepolarizingMatchesDenseBackendDrawForDraw) {
  Rng circuit_rng(5);
  const Circuit circuit = random_circuit(5, circuit_rng);
  StatevectorBackend dense(5);
  ShardedStatevectorBackend sharded(5, 3);
  dense.apply_circuit(circuit);
  sharded.apply_circuit(circuit);
  Rng rng_a(9), rng_b(9);
  for (std::size_t round = 0; round < 8; ++round) {
    dense.apply_depolarizing(round % 5, 0.6, rng_a);
    sharded.apply_depolarizing(round % 5, 0.6, rng_b);
  }
  EXPECT_EQ(count_mismatches(sharded.state().amplitudes(),
                             dense.state().amplitudes()),
            0u);
}

SimplicialComplex sample_complex(std::uint64_t seed, std::size_t vertices) {
  Rng rng(seed * 6151 + 11);
  RandomComplexOptions options;
  options.num_vertices = vertices;
  options.max_dimension = 2;
  for (;;) {
    const auto complex = random_flag_complex(options, rng);
    if (complex.count(1) > 0) return complex;
  }
}

TEST(ShardedBackend, SparseBettiEstimateIsBitIdenticalToDenseEngine) {
  const auto complex = sample_complex(17, 8);
  const SparseMatrix laplacian = sparse_combinatorial_laplacian(complex, 1);

  EstimatorOptions dense_options;
  dense_options.backend = EstimatorBackend::kCircuitSparse;
  dense_options.precision_qubits = 4;
  dense_options.shots = 20000;

  for (auto mode :
       {MixedStateMode::kPurification, MixedStateMode::kSampledBasis}) {
    dense_options.mixed_state = mode;
    const BettiEstimate reference =
        estimate_betti_from_sparse_laplacian(laplacian, dense_options);
    for (std::size_t shards : kShardCounts) {
      EstimatorOptions sharded_options = dense_options;
      sharded_options.simulator = SimulatorKind::kShardedStatevector;
      sharded_options.simulator_shards = shards;
      const BettiEstimate estimate =
          estimate_betti_from_sparse_laplacian(laplacian, sharded_options);
      EXPECT_EQ(estimate.zero_counts, reference.zero_counts)
          << "shards=" << shards;
      EXPECT_DOUBLE_EQ(estimate.zero_probability, reference.zero_probability);
      EXPECT_DOUBLE_EQ(estimate.estimated_betti, reference.estimated_betti);
      EXPECT_EQ(estimate.rounded_betti, reference.rounded_betti);
      EXPECT_EQ(estimate.total_qubits, reference.total_qubits);
    }
  }
}

TEST(ShardedBackend, NoisyTrajectoryEstimateMatchesDenseEngine) {
  const auto complex = sample_complex(23, 6);
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.precision_qubits = 3;
  options.shots = 200;
  options.noise.single_qubit_error = 0.02;
  options.noise.two_qubit_error = 0.05;
  const BettiEstimate reference = estimate_betti(complex, 1, options);
  options.simulator = SimulatorKind::kShardedStatevector;
  options.simulator_shards = 3;
  const BettiEstimate estimate = estimate_betti(complex, 1, options);
  EXPECT_EQ(estimate.zero_counts, reference.zero_counts);
  EXPECT_DOUBLE_EQ(estimate.estimated_betti, reference.estimated_betti);
}

}  // namespace
}  // namespace qtda
