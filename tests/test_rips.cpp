// Tests for topology/rips.hpp and topology/point_cloud.hpp.
#include "topology/rips.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "topology/random_complex.hpp"

namespace qtda {
namespace {

TEST(PointCloud, DistanceIsEuclidean) {
  PointCloud cloud({{0.0, 0.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(cloud.distance(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(cloud.distance(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(cloud.distance(0, 0), 0.0);
}

TEST(PointCloud, DistanceMatrixSymmetric) {
  Rng rng(3);
  PointCloud cloud(random_point_cloud(6, 3, rng));
  const auto d = cloud.distance_matrix();
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(d(i, i), 0.0);
    for (std::size_t j = 0; j < 6; ++j) EXPECT_DOUBLE_EQ(d(i, j), d(j, i));
  }
}

TEST(PointCloud, MismatchedDimensionThrows) {
  EXPECT_THROW(PointCloud({{1.0}, {1.0, 2.0}}), Error);
  PointCloud cloud({{1.0, 2.0}});
  EXPECT_THROW(cloud.add_point({1.0}), Error);
}

TEST(NeighborhoodGraph, EdgesWithinEpsilon) {
  PointCloud cloud({{0.0}, {1.0}, {3.0}});
  const auto g = NeighborhoodGraph::from_point_cloud(cloud, 1.5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(NeighborhoodGraph, BoundaryInclusive) {
  // d = ε exactly is connected (paper: d ≤ ε).
  PointCloud cloud({{0.0}, {2.0}});
  const auto g = NeighborhoodGraph::from_point_cloud(cloud, 2.0);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(NeighborhoodGraph, SelfLoopThrows) {
  NeighborhoodGraph g(3);
  EXPECT_THROW(g.add_edge(1, 1), Error);
}

TEST(NeighborhoodGraph, LowerNeighbors) {
  NeighborhoodGraph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto lower = g.lower_neighbors(2);
  ASSERT_EQ(lower.size(), 2u);
  EXPECT_EQ(lower[0], 0u);
  EXPECT_EQ(lower[1], 1u);
  EXPECT_TRUE(g.lower_neighbors(0).empty());
}

TEST(FlagComplex, TriangleBecomesTwoSimplex) {
  NeighborhoodGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const auto complex = flag_complex(g, 2);
  EXPECT_EQ(complex.count(0), 3u);
  EXPECT_EQ(complex.count(1), 3u);
  EXPECT_EQ(complex.count(2), 1u);
}

TEST(FlagComplex, PathHasNoTriangle) {
  NeighborhoodGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto complex = flag_complex(g, 2);
  EXPECT_EQ(complex.count(1), 2u);
  EXPECT_EQ(complex.count(2), 0u);
}

TEST(FlagComplex, MaxDimensionCapsExpansion) {
  // Complete graph K4 has a tetrahedron, capped at dimension 2.
  NeighborhoodGraph g(4);
  for (VertexId u = 0; u < 4; ++u)
    for (VertexId v = u + 1; v < 4; ++v) g.add_edge(u, v);
  const auto capped = flag_complex(g, 2);
  EXPECT_EQ(capped.count(2), 4u);  // all four triangles
  EXPECT_EQ(capped.count(3), 0u);
  const auto full = flag_complex(g, 3);
  EXPECT_EQ(full.count(3), 1u);
}

TEST(FlagComplex, IsolatedVerticesSurvive) {
  NeighborhoodGraph g(5);
  g.add_edge(0, 1);
  const auto complex = flag_complex(g, 2);
  EXPECT_EQ(complex.count(0), 5u);
  EXPECT_EQ(complex.count(1), 1u);
}

TEST(RipsComplex, SquareWithDiagonalThreshold) {
  // Unit square: side 1, diagonal √2.
  PointCloud cloud({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  const auto sides_only = rips_complex(cloud, 1.0, 2);
  EXPECT_EQ(sides_only.count(1), 4u);
  EXPECT_EQ(sides_only.count(2), 0u);
  const auto with_diagonals = rips_complex(cloud, std::sqrt(2.0) + 1e-9, 2);
  EXPECT_EQ(with_diagonals.count(1), 6u);
  EXPECT_EQ(with_diagonals.count(2), 4u);
}

TEST(RipsComplex, EveryCliqueAppearsExactlyOnce) {
  // Property check on a random graph: the number of k-simplices equals the
  // number of (k+1)-cliques counted by brute force.
  Rng rng(17);
  const std::size_t n = 8;
  NeighborhoodGraph g(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v)
      if (rng.bernoulli(0.5)) g.add_edge(u, v);
  const auto complex = flag_complex(g, 3);

  // Brute force triangles.
  std::size_t triangles = 0;
  for (VertexId a = 0; a < n; ++a)
    for (VertexId b = a + 1; b < n; ++b)
      for (VertexId c = b + 1; c < n; ++c)
        if (g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c))
          ++triangles;
  EXPECT_EQ(complex.count(2), triangles);

  // Brute force tetrahedra.
  std::size_t tets = 0;
  for (VertexId a = 0; a < n; ++a)
    for (VertexId b = a + 1; b < n; ++b)
      for (VertexId c = b + 1; c < n; ++c)
        for (VertexId d = c + 1; d < n; ++d)
          if (g.has_edge(a, b) && g.has_edge(a, c) && g.has_edge(a, d) &&
              g.has_edge(b, c) && g.has_edge(b, d) && g.has_edge(c, d))
            ++tets;
  EXPECT_EQ(complex.count(3), tets);
}

TEST(RipsComplex, ComplexIsDownwardClosed) {
  Rng rng(23);
  PointCloud cloud(random_point_cloud(10, 2, rng));
  const auto complex = rips_complex(cloud, 0.5, 3);
  EXPECT_FALSE(complex.find_missing_face().has_value());
}

TEST(RandomFlagComplex, RespectsVertexCountAndDimension) {
  Rng rng(29);
  RandomComplexOptions options;
  options.num_vertices = 12;
  options.max_dimension = 2;
  const auto complex = random_flag_complex(options, rng);
  EXPECT_EQ(complex.count(0), 12u);
  EXPECT_LE(complex.max_dimension(), 2);
}

TEST(RandomFlagComplex, EdgeProbabilityExtremes) {
  Rng rng(31);
  RandomComplexOptions empty_options;
  empty_options.num_vertices = 6;
  empty_options.edge_probability = 0.0;
  EXPECT_EQ(random_flag_complex(empty_options, rng).count(1), 0u);

  RandomComplexOptions full_options;
  full_options.num_vertices = 6;
  full_options.edge_probability = 1.0;
  EXPECT_EQ(random_flag_complex(full_options, rng).count(1), 15u);
}

}  // namespace
}  // namespace qtda
