// Property tests: the sparse Laplacian chain (CSR builders, Gershgorin,
// padding, rescaling) agrees exactly with the dense reference path on
// random complexes.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "core/padding.hpp"
#include "core/scaling.hpp"
#include "linalg/gershgorin.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

namespace qtda {
namespace {

void expect_matrices_equal(const RealMatrix& a, const RealMatrix& b,
                           double tolerance = 1e-12) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_NEAR(a(i, j), b(i, j), tolerance) << "at (" << i << ',' << j
                                               << ')';
}

class SparseLaplacianProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparseLaplacianProperty, SparseBuildersMatchDense) {
  Rng rng(GetParam() * 7919 + 3);
  RandomComplexOptions options;
  options.num_vertices = 9;
  options.max_dimension = 3;
  const auto complex = random_flag_complex(options, rng);
  for (int k = 0; k <= 2; ++k) {
    if (complex.count(k) == 0) continue;
    expect_matrices_equal(sparse_down_laplacian(complex, k).to_dense(),
                          down_laplacian(complex, k));
    expect_matrices_equal(sparse_up_laplacian(complex, k).to_dense(),
                          up_laplacian(complex, k));
    expect_matrices_equal(
        sparse_combinatorial_laplacian(complex, k).to_dense(),
        combinatorial_laplacian(complex, k));
  }
}

TEST_P(SparseLaplacianProperty, SparseGershgorinMatchesDense) {
  Rng rng(GetParam() * 104729 + 17);
  RandomComplexOptions options;
  options.num_vertices = 8;
  options.max_dimension = 2;
  const auto complex = random_flag_complex(options, rng);
  if (complex.count(1) == 0) GTEST_SKIP() << "edgeless complex";
  const SparseMatrix sparse = sparse_combinatorial_laplacian(complex, 1);
  const RealMatrix dense = sparse.to_dense();
  EXPECT_NEAR(gershgorin_max(sparse), gershgorin_max(dense), 1e-12);
  EXPECT_NEAR(gershgorin_min(sparse), gershgorin_min(dense), 1e-12);
}

TEST_P(SparseLaplacianProperty, SparsePaddingAndScalingMatchDense) {
  Rng rng(GetParam() * 1299709 + 29);
  RandomComplexOptions options;
  options.num_vertices = 8;
  options.max_dimension = 2;
  const auto complex = random_flag_complex(options, rng);
  if (complex.count(1) == 0) GTEST_SKIP() << "edgeless complex";
  const SparseMatrix laplacian = sparse_combinatorial_laplacian(complex, 1);

  for (auto scheme :
       {PaddingScheme::kIdentityHalfLambdaMax, PaddingScheme::kZero}) {
    const SparsePaddedLaplacian sp = pad_laplacian_sparse(laplacian, scheme);
    const PaddedLaplacian dp = pad_laplacian(laplacian.to_dense(), scheme);
    EXPECT_EQ(sp.num_qubits, dp.num_qubits);
    EXPECT_EQ(sp.original_dim, dp.original_dim);
    EXPECT_DOUBLE_EQ(sp.lambda_max, dp.lambda_max);
    expect_matrices_equal(sp.matrix.to_dense(), dp.matrix);

    const SparseScaledHamiltonian ss = rescale_laplacian_sparse(sp, 6.0);
    const ScaledHamiltonian ds = rescale_laplacian(dp, 6.0);
    EXPECT_DOUBLE_EQ(ss.scale, ds.scale);
    EXPECT_DOUBLE_EQ(ss.eigenvalue_to_phase(2.0),
                     ds.eigenvalue_to_phase(2.0));
    expect_matrices_equal(ss.matrix.to_dense(), ds.matrix);
    // The certified Chebyshev bounds really contain the scaled spectrum
    // (PSD-ness gives the lower bound, Gershgorin+rescale the upper).
    const RealVector eigenvalues = symmetric_eigenvalues(ss.matrix.to_dense());
    EXPECT_GE(eigenvalues.front(), ss.spectrum_min() - 1e-9);
    EXPECT_LE(eigenvalues.back(), ss.spectrum_max() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseLaplacianProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(SparsePadding, AcceptsNearSymmetricLikeDensePath) {
  // A tiny one-sided entry is within the dense is_symmetric tolerance; the
  // sparse path must not reject it just because the CSR structures differ.
  const auto lopsided = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 2.0}, {1, 1, 2.0}, {0, 1, 1e-12}});
  EXPECT_NO_THROW(pad_laplacian(lopsided.to_dense()));
  EXPECT_NO_THROW(pad_laplacian_sparse(lopsided));
  // A genuinely asymmetric matrix still throws on both paths.
  const auto skew = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 2.0}, {1, 1, 2.0}, {0, 1, 0.5}});
  EXPECT_THROW(pad_laplacian(skew.to_dense()), Error);
  EXPECT_THROW(pad_laplacian_sparse(skew), Error);
}

TEST(SparseGramProducts, MatchDenseOnRectangular) {
  Rng rng(71);
  std::vector<Triplet> triplets;
  for (int e = 0; e < 40; ++e)
    triplets.push_back({static_cast<std::size_t>(rng.uniform_index(7)),
                        static_cast<std::size_t>(rng.uniform_index(11)),
                        rng.uniform() * 2.0 - 1.0});
  const auto a = SparseMatrix::from_triplets(7, 11, std::move(triplets));
  expect_matrices_equal(a.gram_sparse().to_dense(), a.gram());
  expect_matrices_equal(a.outer_gram_sparse().to_dense(), a.outer_gram());
}

TEST(SparseAdd, SumsAndCancels) {
  const auto a =
      SparseMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}});
  const auto b =
      SparseMatrix::from_triplets(2, 2, {{0, 1, -2.0}, {1, 1, 3.0}});
  const auto c = sparse_add(a, b);
  EXPECT_DOUBLE_EQ(c.to_dense()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.to_dense()(1, 1), 3.0);
  EXPECT_EQ(c.nonzeros(), 2u);  // the (0,1) entries cancelled structurally
  EXPECT_THROW(sparse_add(a, SparseMatrix(3, 2)), Error);
}

TEST(SparseComplexMatvec, MatchesRealPartsSeparately) {
  Rng rng(83);
  std::vector<Triplet> triplets;
  for (int e = 0; e < 30; ++e)
    triplets.push_back({static_cast<std::size_t>(rng.uniform_index(9)),
                        static_cast<std::size_t>(rng.uniform_index(9)),
                        rng.uniform() * 2.0 - 1.0});
  const auto a = SparseMatrix::from_triplets(9, 9, std::move(triplets));
  RealVector re(9), im(9);
  ComplexVector x(9);
  for (std::size_t i = 0; i < 9; ++i) {
    re[i] = rng.uniform();
    im[i] = rng.uniform();
    x[i] = {re[i], im[i]};
  }
  const ComplexVector y = a.multiply(x);
  const RealVector yre = a.multiply(re);
  const RealVector yim = a.multiply(im);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(y[i].real(), yre[i], 1e-12);
    EXPECT_NEAR(y[i].imag(), yim[i], 1e-12);
  }
}

}  // namespace
}  // namespace qtda
