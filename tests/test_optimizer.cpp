// Tests for quantum/optimizer.hpp.
#include "quantum/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "quantum/executor.hpp"
#include "quantum/types.hpp"

namespace qtda {
namespace {

TEST(Optimizer, CancelsAdjacentHadamards) {
  Circuit c(1);
  c.h(0);
  c.h(0);
  OptimizerReport report;
  const Circuit out = optimize_circuit(c, &report);
  EXPECT_EQ(out.gate_count(), 0u);
  EXPECT_EQ(report.cancelled_pairs, 1u);
}

TEST(Optimizer, CancelsAdjacentCnots) {
  Circuit c(2);
  c.cnot(0, 1);
  c.cnot(0, 1);
  const Circuit out = optimize_circuit(c);
  EXPECT_EQ(out.gate_count(), 0u);
}

TEST(Optimizer, DoesNotCancelAcrossInterveningGate) {
  Circuit c(2);
  c.h(0);
  c.cnot(0, 1);  // touches qubit 0 between the Hadamards
  c.h(0);
  const Circuit out = optimize_circuit(c);
  EXPECT_EQ(out.gate_count(), 3u);
}

TEST(Optimizer, CancelsThroughIndependentWires) {
  // A gate on another qubit does not block cancellation.
  Circuit c(2);
  c.h(0);
  c.x(1);
  c.h(0);
  const Circuit out = optimize_circuit(c);
  EXPECT_EQ(out.gate_count(), 1u);
  EXPECT_EQ(out.gates()[0].kind, GateKind::kX);
}

TEST(Optimizer, MergesRotations) {
  Circuit c(1);
  c.rz(0, 0.3);
  c.rz(0, 0.5);
  OptimizerReport report;
  const Circuit out = optimize_circuit(c, &report);
  ASSERT_EQ(out.gate_count(), 1u);
  EXPECT_NEAR(out.gates()[0].parameter, 0.8, 1e-15);
  EXPECT_EQ(report.merged_rotations, 1u);
}

TEST(Optimizer, MergedRotationsCancelToNothing) {
  Circuit c(1);
  c.rx(0, 1.1);
  c.rx(0, -1.1);
  const Circuit out = optimize_circuit(c);
  EXPECT_EQ(out.gate_count(), 0u);
}

TEST(Optimizer, DropsZeroRotations) {
  Circuit c(2);
  c.rz(0, 0.0);
  c.rx(1, 4.0 * kPi);  // full period
  OptimizerReport report;
  const Circuit out = optimize_circuit(c, &report);
  EXPECT_EQ(out.gate_count(), 0u);
  EXPECT_EQ(report.dropped_rotations, 2u);
}

TEST(Optimizer, SAndSdgCancel) {
  Circuit c(1);
  c.s(0);
  c.sdg(0);
  EXPECT_EQ(optimize_circuit(c).gate_count(), 0u);
}

TEST(Optimizer, ControlledGatesNeedMatchingWires) {
  Circuit c(3);
  c.cnot(0, 1);
  c.cnot(2, 1);  // same target, different control: must not cancel
  EXPECT_EQ(optimize_circuit(c).gate_count(), 2u);
}

TEST(Optimizer, FixpointCascades) {
  // X H H X → X X (after inner pair cancels) → nothing.
  Circuit c(1);
  c.x(0);
  c.h(0);
  c.h(0);
  c.x(0);
  EXPECT_EQ(optimize_circuit(c).gate_count(), 0u);
}

TEST(Optimizer, ReportsDepthReduction) {
  Circuit c(1);
  for (int i = 0; i < 10; ++i) c.rz(0, 0.1);
  OptimizerReport report;
  const Circuit out = optimize_circuit(c, &report);
  EXPECT_EQ(report.gates_before, 10u);
  EXPECT_EQ(report.gates_after, 1u);
  EXPECT_EQ(report.depth_before, 10u);
  EXPECT_EQ(report.depth_after, 1u);
  EXPECT_NEAR(out.gates()[0].parameter, 1.0, 1e-12);
}

class OptimizerSemantics : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizerSemantics, PreservesCircuitAction) {
  // Random circuits: optimized and original produce identical states.
  Rng rng(GetParam() * 31 + 7);
  const std::size_t n = 3;
  Circuit c(n);
  for (int i = 0; i < 60; ++i) {
    const std::size_t q = rng.uniform_index(n);
    switch (rng.uniform_index(7)) {
      case 0: c.h(q); break;
      case 1: c.x(q); break;
      case 2: c.s(q); break;
      case 3: c.sdg(q); break;
      case 4: c.rz(q, rng.uniform(-3.0, 3.0)); break;
      case 5: c.rx(q, rng.uniform(-3.0, 3.0)); break;
      default: {
        const std::size_t other = (q + 1 + rng.uniform_index(n - 1)) % n;
        c.cnot(q, other);
        break;
      }
    }
  }
  const Circuit optimized = optimize_circuit(c);
  EXPECT_LE(optimized.gate_count(), c.gate_count());
  const auto before = run_circuit(c);
  const auto after = run_circuit(optimized);
  for (std::uint64_t i = 0; i < before.dimension(); ++i) {
    EXPECT_NEAR(std::abs(before.amplitude(i) - after.amplitude(i)), 0.0,
                1e-10)
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerSemantics,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Optimizer, PreservesGlobalPhase) {
  Circuit c(1);
  c.add_global_phase(0.5);
  c.h(0);
  c.h(0);
  const Circuit out = optimize_circuit(c);
  EXPECT_DOUBLE_EQ(out.global_phase(), 0.5);
}

}  // namespace
}  // namespace qtda
