// Tests for core/betti_estimator.hpp: backend agreement and correctness.
#include "core/betti_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "topology/betti.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

namespace qtda {
namespace {

SimplicialComplex hollow_triangle() {
  return SimplicialComplex::from_simplices(
      {Simplex{0, 1}, Simplex{1, 2}, Simplex{0, 2}}, true);
}

RealMatrix paper_delta1() {
  return RealMatrix{{3, 0, 0, 0, 0, 0},  {0, 3, 0, -1, -1, 0},
                    {0, 0, 3, -1, -1, 0}, {0, -1, -1, 2, 1, -1},
                    {0, -1, -1, 1, 2, 1}, {0, 0, 0, -1, 1, 2}};
}

TEST(Estimator, AnalyticBackendRecoversWorkedExampleBetti) {
  EstimatorOptions options;
  options.backend = EstimatorBackend::kAnalytic;
  options.precision_qubits = 6;
  options.shots = 100000;
  options.delta = 6.0;
  const auto estimate = estimate_betti_from_laplacian(paper_delta1(), options);
  EXPECT_EQ(estimate.rounded_betti, 1u);
  EXPECT_NEAR(estimate.estimated_betti, 1.0, 0.15);
  EXPECT_EQ(estimate.system_qubits, 3u);
  EXPECT_DOUBLE_EQ(estimate.lambda_max, 6.0);
}

TEST(Estimator, ExactProbabilityApproachesBettiOver2q) {
  // With many precision qubits p(0) → β/2^q.
  EstimatorOptions options;
  options.precision_qubits = 10;
  options.shots = 1;
  options.delta = 6.0;
  const auto estimate = estimate_betti_from_laplacian(paper_delta1(), options);
  EXPECT_NEAR(estimate.exact_zero_probability, 1.0 / 8.0, 2e-3);
}

TEST(Estimator, CircuitExactMatchesAnalyticProbability) {
  EstimatorOptions analytic;
  analytic.backend = EstimatorBackend::kAnalytic;
  analytic.precision_qubits = 3;
  analytic.shots = 20000;
  analytic.delta = 6.0;

  EstimatorOptions circuit = analytic;
  circuit.backend = EstimatorBackend::kCircuitExact;

  const auto a = estimate_betti_from_laplacian(paper_delta1(), analytic);
  const auto c = estimate_betti_from_laplacian(paper_delta1(), circuit);
  // Both sample the same underlying p(0); exact probabilities are equal and
  // the estimates agree within shot noise (≈ 4σ ≈ 0.013).
  EXPECT_DOUBLE_EQ(a.exact_zero_probability, c.exact_zero_probability);
  EXPECT_NEAR(a.zero_probability, c.zero_probability, 0.015);
  EXPECT_GT(c.circuit_gates, 0u);
  EXPECT_GT(c.circuit_depth, 0u);
}

TEST(Estimator, SampledBasisMatchesPurification) {
  EstimatorOptions purified;
  purified.backend = EstimatorBackend::kCircuitExact;
  purified.mixed_state = MixedStateMode::kPurification;
  purified.precision_qubits = 3;
  purified.shots = 20000;
  purified.delta = 6.0;

  EstimatorOptions sampled = purified;
  sampled.mixed_state = MixedStateMode::kSampledBasis;

  const auto p = estimate_betti_from_laplacian(paper_delta1(), purified);
  const auto s = estimate_betti_from_laplacian(paper_delta1(), sampled);
  EXPECT_NEAR(p.zero_probability, s.zero_probability, 0.015);
  // The sampled-basis register is q qubits narrower.
  EXPECT_EQ(p.total_qubits, s.total_qubits + p.system_qubits);
}

TEST(Estimator, TrotterBackendConvergesToExact) {
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitTrotter;
  options.precision_qubits = 3;
  options.shots = 20000;
  options.delta = 6.0;

  // Few steps: visible Trotter bias possible.  Many steps: matches the
  // analytic probability within shot noise.
  options.trotter = {32, 2};
  const auto good = estimate_betti_from_laplacian(paper_delta1(), options);
  EXPECT_NEAR(good.zero_probability, good.exact_zero_probability, 0.02);
  EXPECT_EQ(good.rounded_betti, 1u);
}

TEST(Estimator, ZeroPaddingInflatesEstimate) {
  // Ablation: the paper's warning quantified.  Zero padding adds
  // 2^q − |S_k| = 2 ghost kernel states → β̃ ≈ 3 instead of 1.
  EstimatorOptions options;
  options.precision_qubits = 8;
  options.shots = 100000;
  options.delta = 6.0;
  options.padding = PaddingScheme::kZero;
  const auto inflated = estimate_betti_from_laplacian(paper_delta1(), options);
  EXPECT_EQ(inflated.rounded_betti, 3u);

  options.padding = PaddingScheme::kIdentityHalfLambdaMax;
  const auto correct = estimate_betti_from_laplacian(paper_delta1(), options);
  EXPECT_EQ(correct.rounded_betti, 1u);
}

TEST(Estimator, ComplexOverloadUsesLaplacian) {
  EstimatorOptions options;
  options.precision_qubits = 6;
  options.shots = 50000;
  const auto complex = hollow_triangle();
  const auto estimate = estimate_betti(complex, 1, options);
  EXPECT_EQ(estimate.rounded_betti, betti_number(complex, 1));
  EXPECT_EQ(estimate.rounded_betti, 1u);
}

TEST(Estimator, EmptyDimensionGivesZeroEstimate) {
  EstimatorOptions options;
  const auto complex = hollow_triangle();
  const auto estimate = estimate_betti(complex, 2, options);
  EXPECT_DOUBLE_EQ(estimate.estimated_betti, 0.0);
  EXPECT_EQ(estimate.rounded_betti, 0u);
}

TEST(Estimator, MorePrecisionQubitsReduceBias) {
  // exact p(0) decreases toward β/2^q as t grows (ghost leakage shrinks).
  EstimatorOptions options;
  options.shots = 1;
  options.delta = 6.0;
  double previous = 1.0;
  for (std::size_t t = 1; t <= 8; ++t) {
    options.precision_qubits = t;
    const auto estimate =
        estimate_betti_from_laplacian(paper_delta1(), options);
    EXPECT_LE(estimate.exact_zero_probability, previous + 1e-12);
    previous = estimate.exact_zero_probability;
  }
  EXPECT_NEAR(previous, 1.0 / 8.0, 0.01);
}

TEST(Estimator, SeedReproducibility) {
  EstimatorOptions options;
  options.precision_qubits = 4;
  options.shots = 1000;
  options.seed = 777;
  const auto a = estimate_betti_from_laplacian(paper_delta1(), options);
  const auto b = estimate_betti_from_laplacian(paper_delta1(), options);
  EXPECT_EQ(a.zero_counts, b.zero_counts);
  options.seed = 778;
  const auto c = estimate_betti_from_laplacian(paper_delta1(), options);
  // Different seed almost surely differs on 1000 shots.
  EXPECT_NE(a.zero_counts, c.zero_counts);
}

TEST(Estimator, InvalidOptionsThrow) {
  EstimatorOptions options;
  options.shots = 0;
  EXPECT_THROW(estimate_betti_from_laplacian(paper_delta1(), options), Error);
  options.shots = 10;
  options.precision_qubits = 0;
  EXPECT_THROW(estimate_betti_from_laplacian(paper_delta1(), options), Error);
}

TEST(Estimator, NoiseDegradesAccuracy) {
  EstimatorOptions clean;
  clean.backend = EstimatorBackend::kCircuitTrotter;
  clean.precision_qubits = 2;
  clean.shots = 300;
  clean.delta = 6.0;
  clean.trotter = {2, 1};
  RealMatrix small{{2.0, -1.0}, {-1.0, 2.0}};

  EstimatorOptions noisy = clean;
  noisy.noise = NoiseModel{0.02, 0.02};
  const auto clean_estimate = estimate_betti_from_laplacian(small, clean);
  const auto noisy_estimate = estimate_betti_from_laplacian(small, noisy);
  // The noiseless run tracks the exact probability tightly; the noisy one
  // deviates more in expectation.  Use a generous margin to stay flake-free.
  const double clean_err = std::abs(clean_estimate.zero_probability -
                                    clean_estimate.exact_zero_probability);
  EXPECT_LT(clean_err, 0.2);
  EXPECT_LE(noisy_estimate.zero_probability, 1.0);
}

class EstimatorOnRandomComplexes
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimatorOnRandomComplexes, HighResourceEstimateMatchesClassical) {
  // With 10 precision qubits and plenty of shots, the rounded estimate
  // equals the classical Betti number on random complexes (the paper's
  // "error reduces to zero given enough resources" claim).
  Rng rng(GetParam() * 13 + 5);
  RandomComplexOptions complex_options;
  complex_options.num_vertices = 7;
  complex_options.max_dimension = 2;
  const auto complex = random_flag_complex(complex_options, rng);
  if (complex.count(1) == 0) GTEST_SKIP() << "edgeless complex";

  EstimatorOptions options;
  options.precision_qubits = 10;
  options.shots = 200000;
  options.seed = GetParam();
  const auto estimate = estimate_betti(complex, 1, options);
  EXPECT_EQ(estimate.rounded_betti, betti_number(complex, 1))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorOnRandomComplexes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace qtda
