// Cross-module integration tests: miniature versions of the paper's
// experiments wired exactly like the bench harnesses.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "common/stats.hpp"
#include "core/betti_estimator.hpp"
#include "core/pipeline.hpp"
#include "data/features.hpp"
#include "data/gearbox.hpp"
#include "data/windowing.hpp"
#include "ml/dataset.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"
#include "ml/takens.hpp"
#include "topology/betti.hpp"
#include "topology/random_complex.hpp"

namespace qtda {
namespace {

TEST(Integration, MiniFig3ErrorShrinksWithResources) {
  // A reduced Fig. 3 cell: average |β̃ − β| over random complexes must
  // decrease from the weakest setting (1 precision qubit, 100 shots) to the
  // strongest (8 precision qubits, 10^5 shots).
  Rng rng(42);
  std::vector<double> weak_errors, strong_errors;
  for (int rep = 0; rep < 8; ++rep) {
    RandomComplexOptions complex_options;
    complex_options.num_vertices = 6;
    complex_options.max_dimension = 2;
    const auto complex = random_flag_complex(complex_options, rng);
    if (complex.count(1) == 0) continue;
    const auto classical = betti_number(complex, 1);

    EstimatorOptions weak;
    weak.precision_qubits = 1;
    weak.shots = 100;
    weak.seed = 1000 + rep;
    const auto weak_estimate = estimate_betti(complex, 1, weak);
    weak_errors.push_back(std::abs(weak_estimate.estimated_betti -
                                   static_cast<double>(classical)));

    EstimatorOptions strong;
    strong.precision_qubits = 8;
    strong.shots = 100000;
    strong.seed = 2000 + rep;
    const auto strong_estimate = estimate_betti(complex, 1, strong);
    strong_errors.push_back(std::abs(strong_estimate.estimated_betti -
                                     static_cast<double>(classical)));
  }
  ASSERT_FALSE(weak_errors.empty());
  EXPECT_LT(mean(strong_errors), mean(weak_errors));
  EXPECT_LT(mean(strong_errors), 0.25);
}

TEST(Integration, GearboxFeatureClassificationBeatsChance) {
  // Miniature Table 1: synthetic gearbox features → 4-point cloud → Betti
  // features → logistic regression.  Validation accuracy must beat chance
  // decisively.
  GearboxSignalOptions signal_options;
  Rng rng(7);
  const auto samples =
      generate_gearbox_feature_dataset(60, 20, 512, signal_options, rng);

  // Per-sample point cloud → exact Betti features at a feature-scaled ε.
  Dataset dataset;
  for (const auto& sample : samples) {
    const auto cloud = feature_point_cloud(sample.features);
    // ε relative to the cloud's own scale keeps the graph non-trivial.
    const auto d = cloud.distance_matrix();
    double dmax = 0.0;
    for (std::size_t i = 0; i < d.rows(); ++i)
      for (std::size_t j = i + 1; j < d.cols(); ++j)
        dmax = std::max(dmax, d(i, j));
    const double eps = 0.6 * dmax;
    const auto betti = extract_exact_betti(cloud, eps, {0, 1});
    dataset.add({static_cast<double>(betti[0]),
                 static_cast<double>(betti[1]), dmax},
                sample.label);
  }

  Rng split_rng(11);
  const auto split = stratified_split(dataset, 0.5, split_rng);
  StandardScaler scaler;
  scaler.fit(split.train.features);
  Dataset train{scaler.transform(split.train.features), split.train.labels};
  Dataset val{scaler.transform(split.validation.features),
              split.validation.labels};
  LogisticRegression model;
  model.fit(train);
  const double val_accuracy =
      accuracy(val.labels, model.predict_all(val.features));
  EXPECT_GT(val_accuracy, 0.65);
}

TEST(Integration, TimeSeriesPipelineEndToEnd) {
  // Section 5 first pipeline: 500-sample windows → Takens embedding →
  // Rips → Betti estimate.  Just assert the plumbing produces features of
  // the right shape and the loop count is bounded.
  GearboxSignalOptions signal_options;
  Rng rng(13);
  const auto signal = generate_gearbox_signal(GearboxCondition::kHealthy,
                                              2000, signal_options, rng);
  const auto windows = split_windows(signal, 500);
  ASSERT_EQ(windows.size(), 4u);

  TakensOptions takens_options;
  takens_options.dimension = 3;
  takens_options.delay = 2;
  takens_options.stride = 25;  // ~20 embedded points per window
  const auto cloud = takens_embedding(windows[0], takens_options);
  EXPECT_LE(cloud.size(), 20u);

  PipelineOptions pipeline_options;
  // Feature scale: half the cloud's diameter.
  double dmax = 0.0;
  const auto d = cloud.distance_matrix();
  for (std::size_t i = 0; i < d.rows(); ++i)
    for (std::size_t j = i + 1; j < d.cols(); ++j)
      dmax = std::max(dmax, d(i, j));
  pipeline_options.epsilon = 0.4 * dmax;
  pipeline_options.dimensions = {0, 1};
  pipeline_options.estimator.precision_qubits = 6;
  pipeline_options.estimator.shots = 4000;
  const auto features = extract_betti_features(cloud, pipeline_options);
  ASSERT_EQ(features.estimated.size(), 2u);
  EXPECT_GE(features.estimated[0], 0.0);
  EXPECT_GE(features.estimated[1], 0.0);
  // The quantum estimate tracks the classical value to within a loose bound.
  EXPECT_NEAR(features.estimated[0],
              static_cast<double>(features.exact[0]), 1.5);
}

TEST(Integration, EstimatedFeaturesCorrelateWithExactAcrossScales) {
  // Fig. 4's mechanism: as ε sweeps, the estimated and exact Betti numbers
  // must move together (high rank correlation proxy: Pearson on values).
  Rng rng(17);
  PointCloud cloud(random_point_cloud(10, 2, rng));
  std::vector<double> exact_curve, estimated_curve;
  for (double eps = 0.2; eps <= 0.8; eps += 0.1) {
    PipelineOptions options;
    options.epsilon = eps;
    options.dimensions = {0};
    options.estimator.precision_qubits = 8;
    options.estimator.shots = 50000;
    const auto features = extract_betti_features(cloud, options);
    exact_curve.push_back(static_cast<double>(features.exact[0]));
    estimated_curve.push_back(features.estimated[0]);
  }
  EXPECT_GT(pearson_correlation(exact_curve, estimated_curve), 0.9);
}

}  // namespace
}  // namespace qtda
