// Tests for linalg/rank.hpp.
#include "linalg/rank.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "linalg/matrix_ops.hpp"

namespace qtda {
namespace {

TEST(Rank, ZeroAndIdentity) {
  EXPECT_EQ(rank(RealMatrix(3, 3)), 0u);
  EXPECT_EQ(rank(RealMatrix::identity(4)), 4u);
  EXPECT_EQ(rank(RealMatrix(0, 0)), 0u);
}

TEST(Rank, RectangularFullRank) {
  RealMatrix a{{1, 0, 0}, {0, 1, 0}};
  EXPECT_EQ(rank(a), 2u);
  EXPECT_EQ(rank(transpose(a)), 2u);
}

TEST(Rank, LinearlyDependentRows) {
  RealMatrix a{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}};
  EXPECT_EQ(rank(a), 2u);
}

TEST(Rank, NullityComplement) {
  RealMatrix a{{1, 2, 3}, {2, 4, 6}};
  EXPECT_EQ(rank(a), 1u);
  EXPECT_EQ(nullity(a), 2u);
}

class RandomLowRank : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomLowRank, ProductRankIsInnerDimension) {
  const std::size_t r = GetParam();
  Rng rng(1000 + r);
  const std::size_t m = 10, n = 12;
  RealMatrix left(m, r), right(r, n);
  for (std::size_t i = 0; i < left.size(); ++i)
    left.data()[i] = rng.uniform(-1.0, 1.0);
  for (std::size_t i = 0; i < right.size(); ++i)
    right.data()[i] = rng.uniform(-1.0, 1.0);
  // Random continuous matrices are full rank a.s., so rank(L·R) = r.
  EXPECT_EQ(rank(matmul(left, right)), r);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RandomLowRank,
                         ::testing::Values(1, 2, 3, 5, 7, 10));

TEST(RankModP, MatchesDoubleRankOnIntegerMatrices) {
  Rng rng(77);
  for (int rep = 0; rep < 30; ++rep) {
    const std::size_t m = 6, n = 8;
    RealMatrix a(m, n);
    for (std::size_t i = 0; i < a.size(); ++i)
      a.data()[i] = static_cast<double>(rng.uniform_int(-2, 2));
    EXPECT_EQ(rank(a), rank_mod_p(a)) << "rep " << rep;
  }
}

TEST(RankModP, NonIntegerThrows) {
  RealMatrix a{{0.5}};
  EXPECT_THROW(rank_mod_p(a), Error);
}

TEST(RankModP, BoundaryLikeMatrix) {
  // The paper's ∂2 column (Eq. 15) has rank 1.
  RealMatrix d2{{1}, {-1}, {1}, {0}, {0}, {0}};
  EXPECT_EQ(rank(d2), 1u);
  EXPECT_EQ(rank_mod_p(d2), 1u);
}

TEST(Rank, ToleranceSeparatesNoiseFromSignal) {
  RealMatrix a{{1.0, 0.0}, {0.0, 1e-14}};
  EXPECT_EQ(rank(a, 1e-10), 1u);   // tiny entry below threshold
  EXPECT_EQ(rank(a, 1e-16), 2u);   // tight tolerance keeps it
}

TEST(Rank, SparseOverloadMatchesDense) {
  const auto sparse = SparseMatrix::from_triplets(
      3, 3, {{0, 0, 1.0}, {1, 1, 1.0}, {2, 0, 1.0}});
  EXPECT_EQ(rank(sparse), rank(sparse.to_dense()));
}

TEST(Rank, RankOfTransposeEqualsRank) {
  Rng rng(88);
  for (int rep = 0; rep < 10; ++rep) {
    RealMatrix a(5, 7);
    for (std::size_t i = 0; i < a.size(); ++i)
      a.data()[i] = static_cast<double>(rng.uniform_int(-1, 1));
    EXPECT_EQ(rank(a), rank(transpose(a)));
  }
}

}  // namespace
}  // namespace qtda
