// Tests for linalg/sparse_matrix.hpp.
#include "linalg/sparse_matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "linalg/matrix_ops.hpp"

namespace qtda {
namespace {

TEST(SparseMatrix, EmptyMatrix) {
  SparseMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nonzeros(), 0u);
  const auto y = m.multiply(RealVector(4, 1.0));
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SparseMatrix, FromTripletsDense) {
  const auto m = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  const auto d = m.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
}

TEST(SparseMatrix, DuplicateTripletsAreSummed) {
  const auto m =
      SparseMatrix::from_triplets(1, 1, {{0, 0, 1.0}, {0, 0, 2.5}});
  EXPECT_DOUBLE_EQ(m.to_dense()(0, 0), 3.5);
  EXPECT_EQ(m.nonzeros(), 1u);
}

TEST(SparseMatrix, CancellingDuplicatesAreDropped) {
  const auto m =
      SparseMatrix::from_triplets(1, 1, {{0, 0, 1.0}, {0, 0, -1.0}});
  EXPECT_EQ(m.nonzeros(), 0u);
}

TEST(SparseMatrix, OutOfRangeTripletThrows) {
  EXPECT_THROW(SparseMatrix::from_triplets(1, 1, {{0, 1, 1.0}}), Error);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  Rng rng(5);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 30; ++i) {
    triplets.push_back({rng.uniform_index(7), rng.uniform_index(9),
                        rng.uniform(-2.0, 2.0)});
  }
  const auto sparse = SparseMatrix::from_triplets(7, 9, triplets);
  const auto dense = sparse.to_dense();
  RealVector x(9);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  const auto ys = sparse.multiply(x);
  const auto yd = matvec(dense, x);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(SparseMatrix, MultiplyTransposedMatchesDense) {
  Rng rng(6);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 25; ++i) {
    triplets.push_back({rng.uniform_index(5), rng.uniform_index(6),
                        rng.uniform(-2.0, 2.0)});
  }
  const auto sparse = SparseMatrix::from_triplets(5, 6, triplets);
  RealVector x(5);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  const auto ys = sparse.multiply_transposed(x);
  const auto yd = matvec(transpose(sparse.to_dense()), x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(SparseMatrix, GramMatchesDense) {
  Rng rng(7);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 20; ++i) {
    triplets.push_back({rng.uniform_index(6), rng.uniform_index(4),
                        rng.uniform(-1.0, 1.0)});
  }
  const auto sparse = SparseMatrix::from_triplets(6, 4, triplets);
  const auto dense = sparse.to_dense();
  const auto gram_sparse = sparse.gram();
  const auto gram_dense = matmul(transpose(dense), dense);
  EXPECT_LT(max_abs_diff(gram_sparse, gram_dense), 1e-12);
}

TEST(SparseMatrix, OuterGramMatchesDense) {
  Rng rng(8);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 20; ++i) {
    triplets.push_back({rng.uniform_index(4), rng.uniform_index(6),
                        rng.uniform(-1.0, 1.0)});
  }
  const auto sparse = SparseMatrix::from_triplets(4, 6, triplets);
  const auto dense = sparse.to_dense();
  const auto outer_sparse = sparse.outer_gram();
  const auto outer_dense = matmul(dense, transpose(dense));
  EXPECT_LT(max_abs_diff(outer_sparse, outer_dense), 1e-12);
}

TEST(SparseMatrix, TransposedRoundTrip) {
  const auto m = SparseMatrix::from_triplets(
      2, 3, {{0, 2, 1.0}, {1, 0, -1.0}, {1, 2, 2.0}});
  const auto tt = m.transposed().transposed();
  EXPECT_LT(max_abs_diff(m.to_dense(), tt.to_dense()), 1e-15);
  EXPECT_EQ(m.transposed().rows(), 3u);
  EXPECT_EQ(m.transposed().cols(), 2u);
}

TEST(SparseMatrix, ShapeMismatchThrows) {
  SparseMatrix m(2, 3);
  EXPECT_THROW(m.multiply(RealVector(2, 0.0)), Error);
  EXPECT_THROW(m.multiply_transposed(RealVector(3, 0.0)), Error);
}

}  // namespace
}  // namespace qtda
