// Tests for data/: gearbox generator, features, windowing.
#include "data/gearbox.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "data/features.hpp"
#include "data/windowing.hpp"

namespace qtda {
namespace {

TEST(Gearbox, SignalLengthAndDeterminism) {
  GearboxSignalOptions options;
  Rng a(1), b(1);
  const auto s1 =
      generate_gearbox_signal(GearboxCondition::kHealthy, 500, options, a);
  const auto s2 =
      generate_gearbox_signal(GearboxCondition::kHealthy, 500, options, b);
  EXPECT_EQ(s1.size(), 500u);
  EXPECT_EQ(s1, s2);
}

TEST(Gearbox, FaultIncreasesImpulsiveness) {
  // Surface faults add impulses: kurtosis and crest factor rise.
  GearboxSignalOptions options;
  Rng rng(2);
  std::vector<double> healthy_kurtosis, faulty_kurtosis;
  for (int i = 0; i < 10; ++i) {
    const auto healthy = generate_gearbox_signal(
        GearboxCondition::kHealthy, 2048, options, rng);
    const auto faulty = generate_gearbox_signal(
        GearboxCondition::kSurfaceFault, 2048, options, rng);
    healthy_kurtosis.push_back(kurtosis(healthy));
    faulty_kurtosis.push_back(kurtosis(faulty));
  }
  EXPECT_GT(mean(faulty_kurtosis), mean(healthy_kurtosis));
}

TEST(Gearbox, FaultIncreasesRms) {
  GearboxSignalOptions options;
  Rng rng(3);
  const auto healthy =
      generate_gearbox_signal(GearboxCondition::kHealthy, 4096, options, rng);
  const auto faulty = generate_gearbox_signal(GearboxCondition::kSurfaceFault,
                                              4096, options, rng);
  EXPECT_GT(rms(faulty), rms(healthy));
}

TEST(Features, SixFeaturesInOrder) {
  const std::vector<double> signal{1.0, -1.0, 1.0, -1.0};
  const auto f = condition_monitoring_features(signal);
  ASSERT_EQ(f.size(), 6u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // mean |x|
  EXPECT_DOUBLE_EQ(f[1], 1.0);  // RMS
  EXPECT_NEAR(f[5], 1.0, 1e-12);  // crest = peak/RMS
}

TEST(Features, TooShortSignalThrows) {
  EXPECT_THROW(condition_monitoring_features({1.0, 2.0}), Error);
}

TEST(Features, PointCloudHasFourConsecutiveTriples) {
  const std::vector<double> f{1, 2, 3, 4, 5, 6};
  const auto cloud = feature_point_cloud(f);
  ASSERT_EQ(cloud.size(), 4u);
  EXPECT_EQ(cloud.dimension(), 3u);
  EXPECT_DOUBLE_EQ(cloud.point(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(cloud.point(0)[2], 3.0);
  EXPECT_DOUBLE_EQ(cloud.point(3)[0], 4.0);
  EXPECT_DOUBLE_EQ(cloud.point(3)[2], 6.0);
  EXPECT_THROW(feature_point_cloud({1, 2, 3}), Error);
}

TEST(GearboxDataset, PaperShape) {
  // 255 samples, 51 healthy — the AutoFuse processed-set shape.
  GearboxSignalOptions options;
  Rng rng(4);
  const auto samples =
      generate_gearbox_feature_dataset(255, 51, 512, options, rng);
  EXPECT_EQ(samples.size(), 255u);
  std::size_t healthy = 0;
  for (const auto& s : samples) {
    EXPECT_EQ(s.features.size(), 6u);
    healthy += s.label == 0 ? 1 : 0;
  }
  EXPECT_EQ(healthy, 51u);
}

TEST(GearboxDataset, ClassesAreStatisticallySeparated) {
  GearboxSignalOptions options;
  Rng rng(5);
  const auto samples =
      generate_gearbox_feature_dataset(60, 30, 1024, options, rng);
  // Mean RMS (feature 1) separates the classes.
  std::vector<double> healthy_rms, faulty_rms;
  for (const auto& s : samples)
    (s.label == 0 ? healthy_rms : faulty_rms).push_back(s.features[1]);
  EXPECT_GT(mean(faulty_rms), mean(healthy_rms) + stddev(healthy_rms));
}

TEST(Windowing, SplitDropsRemainder) {
  std::vector<double> series(1050, 0.0);
  const auto windows = split_windows(series, 500);
  EXPECT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].size(), 500u);
}

TEST(Windowing, SplitPreservesOrder) {
  std::vector<double> series{1, 2, 3, 4, 5, 6};
  const auto windows = split_windows(series, 2);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_DOUBLE_EQ(windows[1][0], 3.0);
  EXPECT_DOUBLE_EQ(windows[2][1], 6.0);
}

TEST(Windowing, SampleWithoutReplacementIsDistinct) {
  std::vector<double> series(5000);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] = static_cast<double>(i);
  Rng rng(6);
  const auto sampled = sample_windows(series, 500, 5, rng);
  EXPECT_EQ(sampled.size(), 5u);
  // First elements are multiples of 500, all distinct.
  std::vector<double> firsts;
  for (const auto& w : sampled) firsts.push_back(w[0]);
  std::sort(firsts.begin(), firsts.end());
  EXPECT_TRUE(std::adjacent_find(firsts.begin(), firsts.end()) ==
              firsts.end());
}

TEST(Windowing, SampleWithReplacementWhenCountExceeds) {
  std::vector<double> series(1000, 1.0);
  Rng rng(7);
  const auto sampled = sample_windows(series, 500, 10, rng);
  EXPECT_EQ(sampled.size(), 10u);
}

TEST(Windowing, TooShortSeriesThrows) {
  Rng rng(8);
  EXPECT_THROW(sample_windows(std::vector<double>(10, 0.0), 50, 1, rng),
               Error);
}

}  // namespace
}  // namespace qtda
