// Tests for quantum/qft.hpp.
#include "quantum/qft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/random.hpp"
#include "quantum/executor.hpp"
#include "quantum/statevector.hpp"
#include "quantum/types.hpp"

namespace qtda {
namespace {

/// Reference DFT amplitude ⟨y|QFT|x⟩ = e^{2πi x y / N} / √N.
Amplitude dft_entry(std::uint64_t y, std::uint64_t x, std::uint64_t n) {
  const double angle =
      kTwoPi * static_cast<double>(x) * static_cast<double>(y) /
      static_cast<double>(n);
  return Amplitude{std::cos(angle), std::sin(angle)} /
         std::sqrt(static_cast<double>(n));
}

class QftMatchesDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QftMatchesDft, OnEveryBasisState) {
  const std::size_t t = GetParam();
  const std::uint64_t dim = 1ULL << t;
  std::vector<std::size_t> qubits(t);
  for (std::size_t i = 0; i < t; ++i) qubits[i] = i;
  for (std::uint64_t x = 0; x < dim; ++x) {
    Circuit c(t);
    append_qft(c, qubits);
    Statevector s(t);
    s.set_basis_state(x);
    s.apply_circuit(c);
    for (std::uint64_t y = 0; y < dim; ++y) {
      const auto expected = dft_entry(y, x, dim);
      EXPECT_NEAR(std::abs(s.amplitude(y) - expected), 0.0, 1e-10)
          << "t=" << t << " x=" << x << " y=" << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, QftMatchesDft, ::testing::Values(1, 2, 3, 4));

TEST(Qft, InverseComposesToIdentity) {
  const std::size_t t = 4;
  std::vector<std::size_t> qubits(t);
  for (std::size_t i = 0; i < t; ++i) qubits[i] = i;
  Circuit c(t);
  append_qft(c, qubits);
  append_inverse_qft(c, qubits);

  Rng rng(3);
  std::vector<Amplitude> amps(1ULL << t);
  for (auto& a : amps) a = {rng.normal(), rng.normal()};
  Statevector s(t);
  s.set_amplitudes(amps);
  s.normalize();
  const auto input = s.amplitudes();
  s.apply_circuit(c);
  for (std::size_t i = 0; i < input.size(); ++i)
    EXPECT_NEAR(std::abs(s.amplitudes()[i] - input[i]), 0.0, 1e-10);
}

TEST(Qft, WorksOnQubitSubset) {
  // QFT over qubits {1, 2} of a 3-qubit register leaves qubit 0 alone.
  Circuit c(3);
  append_qft(c, {1, 2});
  Statevector s(3);
  s.set_basis_state(0b100);  // qubit 0 = 1, subset in |00⟩
  s.apply_circuit(c);
  // QFT|00⟩ = uniform superposition on the subset; qubit 0 stays 1.
  for (std::uint64_t sub = 0; sub < 4; ++sub) {
    EXPECT_NEAR(s.probability(0b100 | sub), 0.25, 1e-12);
    EXPECT_NEAR(s.probability(sub), 0.0, 1e-12);
  }
}

TEST(Qft, UniformSuperpositionMapsToZero) {
  // QFT† of the uniform superposition is |0⟩ — the heart of QPE readout.
  const std::size_t t = 3;
  Circuit c(t);
  for (std::size_t q = 0; q < t; ++q) c.h(q);
  append_inverse_qft(c, {0, 1, 2});
  const auto s = run_circuit(c);
  EXPECT_NEAR(s.probability(0), 1.0, 1e-10);
}

}  // namespace
}  // namespace qtda
