// Tests for topology/filtration.hpp.
#include "topology/filtration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "topology/betti.hpp"
#include "topology/random_complex.hpp"
#include "topology/rips.hpp"

namespace qtda {
namespace {

TEST(Filtration, OrdersByBirthThenDimension) {
  Filtration f({{Simplex{0, 1}, 2.0},
                {Simplex{0}, 0.0},
                {Simplex{1}, 0.0}});
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].simplex.dimension(), 0);
  EXPECT_EQ(f[1].simplex.dimension(), 0);
  EXPECT_EQ(f[2].simplex, (Simplex{0, 1}));
  EXPECT_DOUBLE_EQ(f.max_birth(), 2.0);
}

TEST(Filtration, MissingFaceThrows) {
  EXPECT_THROW(Filtration({{Simplex{0, 1}, 1.0}, {Simplex{0}, 0.0}}), Error);
}

TEST(Filtration, FaceAfterCofaceThrows) {
  // Edge born before its vertex violates the subcomplex property.
  EXPECT_THROW(Filtration({{Simplex{0}, 0.0},
                           {Simplex{1}, 5.0},
                           {Simplex{0, 1}, 1.0}}),
               Error);
}

TEST(Filtration, DuplicateSimplexThrows) {
  EXPECT_THROW(Filtration({{Simplex{0}, 0.0}, {Simplex{0}, 1.0}}), Error);
}

TEST(Filtration, PositionLookup) {
  Filtration f({{Simplex{0}, 0.0}, {Simplex{1}, 0.0}, {Simplex{0, 1}, 1.0}});
  EXPECT_EQ(f.position_of(Simplex{0, 1}), 2u);
  EXPECT_THROW(f.position_of(Simplex{5}), Error);
}

TEST(RipsFiltration, BirthValuesAreLongestEdges) {
  PointCloud cloud({{0.0}, {1.0}, {3.0}});
  const auto f = rips_filtration(cloud, 10.0, 2);
  // Vertices at 0; edges at their lengths; triangle at the max edge (3).
  EXPECT_EQ(f.size(), 7u);
  double triangle_birth = -1.0;
  for (const auto& fs : f.entries()) {
    if (fs.simplex.dimension() == 0) {
      EXPECT_DOUBLE_EQ(fs.birth, 0.0);
    }
    if (fs.simplex == (Simplex{0, 1})) {
      EXPECT_DOUBLE_EQ(fs.birth, 1.0);
    }
    if (fs.simplex == (Simplex{1, 2})) {
      EXPECT_DOUBLE_EQ(fs.birth, 2.0);
    }
    if (fs.simplex == (Simplex{0, 2})) {
      EXPECT_DOUBLE_EQ(fs.birth, 3.0);
    }
    if (fs.simplex.dimension() == 2) triangle_birth = fs.birth;
  }
  EXPECT_DOUBLE_EQ(triangle_birth, 3.0);
}

TEST(RipsFiltration, MaxEpsilonTruncates) {
  PointCloud cloud({{0.0}, {1.0}, {3.0}});
  const auto f = rips_filtration(cloud, 1.5, 2);
  // Only the length-1 edge enters.
  EXPECT_EQ(f.size(), 4u);
}

TEST(RipsFiltration, ComplexAtMatchesDirectRips) {
  Rng rng(41);
  PointCloud cloud(random_point_cloud(9, 2, rng));
  const auto f = rips_filtration(cloud, 1.0, 2);
  for (double eps : {0.2, 0.4, 0.6, 0.8}) {
    const auto from_filtration = f.complex_at(eps);
    const auto direct = rips_complex(cloud, eps, 2);
    for (int k = 0; k <= 2; ++k) {
      EXPECT_EQ(from_filtration.count(k), direct.count(k))
          << "eps=" << eps << " k=" << k;
    }
  }
}

TEST(RipsFiltration, PrefixIsAlwaysAComplex) {
  Rng rng(43);
  PointCloud cloud(random_point_cloud(8, 3, rng));
  const auto f = rips_filtration(cloud, 1.2, 2);
  // Every prefix of the filtration order must be downward closed.
  std::vector<Simplex> prefix;
  for (std::size_t i = 0; i < f.size(); ++i) {
    prefix.push_back(f[i].simplex);
    EXPECT_NO_THROW(SimplicialComplex::from_simplices(prefix, false))
        << "prefix length " << i + 1;
  }
}

}  // namespace
}  // namespace qtda
