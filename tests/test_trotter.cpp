// Tests for quantum/trotter.hpp: synthesized circuits vs matrix exponentials.
#include "quantum/trotter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "linalg/matrix_exp.hpp"
#include "linalg/matrix_ops.hpp"
#include "quantum/executor.hpp"
#include "quantum/gates.hpp"
#include "quantum/statevector.hpp"
#include "quantum/types.hpp"

namespace qtda {
namespace {

/// Max |difference| between circuit action and a dense unitary, probed on
/// every basis state of an n-qubit register.
double circuit_vs_unitary(const Circuit& circuit, const ComplexMatrix& u) {
  const std::size_t n = circuit.num_qubits();
  const std::uint64_t dim = 1ULL << n;
  double worst = 0.0;
  for (std::uint64_t col = 0; col < dim; ++col) {
    Statevector s(n);
    s.set_basis_state(col);
    s.apply_circuit(circuit);
    for (std::uint64_t row = 0; row < dim; ++row)
      worst = std::max(worst, std::abs(s.amplitude(row) - u(row, col)));
  }
  return worst;
}

TEST(PauliExponential, SingleZTermIsExact) {
  // e^{iθZ} needs no Trotterization.
  const double theta = 0.42;
  Circuit c(1);
  append_pauli_exponential(c, PauliString("Z"), theta);
  const auto u = unitary_exp(RealMatrix{{1.0, 0.0}, {0.0, -1.0}}, theta);
  EXPECT_LT(circuit_vs_unitary(c, u), 1e-12);
}

TEST(PauliExponential, SingleXTermIsExact) {
  const double theta = -0.7;
  Circuit c(1);
  append_pauli_exponential(c, PauliString("X"), theta);
  const auto u = unitary_exp(RealMatrix{{0.0, 1.0}, {1.0, 0.0}}, theta);
  EXPECT_LT(circuit_vs_unitary(c, u), 1e-12);
}

TEST(PauliExponential, SingleYTermIsExact) {
  const double theta = 1.3;
  Circuit c(1);
  append_pauli_exponential(c, PauliString("Y"), theta);
  // e^{iθY} = cosθ·I + i·sinθ·Y (real matrix).
  ComplexMatrix u(2, 2);
  u(0, 0) = std::cos(theta);
  u(1, 1) = std::cos(theta);
  u(0, 1) = std::sin(theta);
  u(1, 0) = -std::sin(theta);
  EXPECT_LT(circuit_vs_unitary(c, u), 1e-12);
}

TEST(PauliExponential, TwoQubitZZIsExact) {
  const double theta = 0.9;
  Circuit c(2);
  append_pauli_exponential(c, PauliString("ZZ"), theta);
  RealMatrix zz(4, 4);
  zz(0, 0) = 1.0;
  zz(1, 1) = -1.0;
  zz(2, 2) = -1.0;
  zz(3, 3) = 1.0;
  EXPECT_LT(circuit_vs_unitary(c, unitary_exp(zz, theta)), 1e-12);
}

TEST(PauliExponential, MixedLettersXYZIsExact) {
  const double theta = 0.31;
  Circuit c(3);
  const PauliString p("XYZ");
  append_pauli_exponential(c, p, theta);
  // Dense reference via the Pauli matrix (Hermitian, P² = I):
  // e^{iθP} = cosθ·I + i·sinθ·P.
  const auto pm = p.matrix();
  ComplexMatrix u = ComplexMatrix::identity(8);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      u(i, j) = std::cos(theta) * (i == j ? 1.0 : 0.0) +
                std::complex<double>(0.0, std::sin(theta)) * pm(i, j);
  EXPECT_LT(circuit_vs_unitary(c, u), 1e-12);
}

TEST(PauliExponential, IdentityStringIsGlobalPhase) {
  Circuit c(2);
  append_pauli_exponential(c, PauliString("II"), 0.8);
  EXPECT_EQ(c.gate_count(), 0u);
  EXPECT_DOUBLE_EQ(c.global_phase(), 0.8);
  const auto s = run_circuit(c);
  EXPECT_NEAR(std::arg(s.amplitude(0)), 0.8, 1e-12);
}

TEST(PauliExponential, ZeroAngleIsNoop) {
  Circuit c(2);
  append_pauli_exponential(c, PauliString("XZ"), 0.0);
  EXPECT_EQ(c.gate_count(), 0u);
}

TEST(PauliExponential, OffsetShiftsWires) {
  // Exponential of Z on string qubit 0 with offset 1 acts on wire 1.
  Circuit c(2);
  append_pauli_exponential(c, PauliString("Z"), 0.5, /*offset=*/1);
  ASSERT_EQ(c.gate_count(), 1u);
  EXPECT_EQ(c.gates()[0].targets[0], 1u);
}

TEST(TrotterCircuit, CommutingTermsAreExactInOneStep) {
  // Z⊗I and I⊗Z commute: first-order Trotter is exact.
  PauliSum h({{0.7, PauliString("ZI")}, {-0.3, PauliString("IZ")}});
  const Circuit c = trotter_circuit(h, 1.0, {1, 1}, 2);
  const auto dense = h.matrix();
  RealMatrix real_h(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) real_h(i, j) = dense(i, j).real();
  EXPECT_LT(circuit_vs_unitary(c, unitary_exp(real_h, 1.0)), 1e-12);
}

class TrotterConvergence : public ::testing::TestWithParam<int> {};

TEST_P(TrotterConvergence, ErrorShrinksWithSteps) {
  // Non-commuting X + Z: error must decrease as steps grow, faster for
  // order 2.
  const int order = GetParam();
  PauliSum h({{0.6, PauliString("X")}, {0.8, PauliString("Z")}});
  RealMatrix real_h{{0.8, 0.6}, {0.6, -0.8}};
  const auto exact = unitary_exp(real_h, 1.0);
  double previous = 1e9;
  for (std::size_t steps : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const Circuit c = trotter_circuit(h, 1.0, {steps, order}, 1);
    const double err = circuit_vs_unitary(c, exact);
    EXPECT_LT(err, previous * 1.01);
    previous = err;
  }
  EXPECT_LT(previous, order == 2 ? 1e-4 : 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Orders, TrotterConvergence, ::testing::Values(1, 2));

TEST(TrotterCircuit, SecondOrderBeatsFirstOrder) {
  PauliSum h({{0.5, PauliString("XX")},
              {0.5, PauliString("ZI")},
              {0.25, PauliString("IY")}});
  // IY makes H complex, so compare first vs second order against a
  // high-step second-order reference instead of a real-matrix exponential.
  const Circuit reference = trotter_circuit(h, 1.0, {256, 2}, 2);
  Statevector ref_state(2);
  ref_state.apply_single_qubit(gates::H(), 0);
  ref_state.apply_circuit(reference);

  const auto error_of = [&](const TrotterOptions& options) {
    const Circuit c = trotter_circuit(h, 1.0, options, 2);
    Statevector s(2);
    s.apply_single_qubit(gates::H(), 0);
    s.apply_circuit(c);
    double diff = 0.0;
    for (std::uint64_t i = 0; i < 4; ++i)
      diff = std::max(diff,
                      std::abs(s.amplitude(i) - ref_state.amplitude(i)));
    return diff;
  };
  EXPECT_LT(error_of({4, 2}), error_of({4, 1}));
}

TEST(TrotterCircuit, GateCountScalesLinearlyInSteps) {
  PauliSum h({{1.0, PauliString("XX")}, {1.0, PauliString("ZZ")}});
  const auto c1 = trotter_circuit(h, 1.0, {1, 1}, 2);
  const auto c4 = trotter_circuit(h, 1.0, {4, 1}, 2);
  EXPECT_EQ(c4.gate_count(), 4 * c1.gate_count());
}

TEST(TrotterCircuit, ControlledFragmentOnlyFiresWithControl) {
  // Control wire 0, system wire 1: with control |0⟩ nothing happens.
  PauliSum h({{0.9, PauliString("X")}});
  const Circuit fragment = trotter_circuit(h, 1.0, {1, 1}, 2, /*offset=*/1);
  const Circuit controlled = fragment.controlled_on(0);
  const auto idle = run_circuit(controlled);
  EXPECT_NEAR(idle.probability(0), 1.0, 1e-12);

  Circuit with_control(2);
  with_control.x(0);
  with_control.append_circuit(controlled);
  const auto fired = run_circuit(with_control);
  // e^{i·0.9·X}|0⟩ has |⟨1|ψ⟩|² = sin²(0.9) on wire 1.
  EXPECT_NEAR(fired.probability(0b11), std::sin(0.9) * std::sin(0.9), 1e-10);
}

}  // namespace
}  // namespace qtda
