// Tests for quantum/gates.hpp: unitarity and algebraic identities.
#include "quantum/gates.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix_ops.hpp"
#include "quantum/types.hpp"

namespace qtda {
namespace {

TEST(Gates, AllNamedGatesAreUnitary) {
  for (const auto& g :
       {gates::I(), gates::X(), gates::Y(), gates::Z(), gates::H(),
        gates::S(), gates::Sdg(), gates::T(), gates::Tdg(), gates::RX(0.3),
        gates::RY(1.1), gates::RZ(-0.7), gates::Phase(2.2)}) {
    EXPECT_TRUE(is_unitary(g, 1e-12));
  }
}

TEST(Gates, PauliAlgebra) {
  // X² = Y² = Z² = I; XY = iZ.
  const auto id = ComplexMatrix::identity(2);
  EXPECT_LT(max_abs_diff(matmul(gates::X(), gates::X()), id), 1e-15);
  EXPECT_LT(max_abs_diff(matmul(gates::Y(), gates::Y()), id), 1e-15);
  EXPECT_LT(max_abs_diff(matmul(gates::Z(), gates::Z()), id), 1e-15);
  const auto xy = matmul(gates::X(), gates::Y());
  const auto iz = scale(gates::Z(), std::complex<double>(0.0, 1.0));
  EXPECT_LT(max_abs_diff(xy, iz), 1e-15);
}

TEST(Gates, HadamardConjugation) {
  // H·Z·H = X and H·X·H = Z.
  const auto hzh = matmul(gates::H(), matmul(gates::Z(), gates::H()));
  EXPECT_LT(max_abs_diff(hzh, gates::X()), 1e-12);
  const auto hxh = matmul(gates::H(), matmul(gates::X(), gates::H()));
  EXPECT_LT(max_abs_diff(hxh, gates::Z()), 1e-12);
}

TEST(Gates, PhaseGateFamilyTowers) {
  // T² = S, S² = Z.
  EXPECT_LT(max_abs_diff(matmul(gates::T(), gates::T()), gates::S()), 1e-12);
  EXPECT_LT(max_abs_diff(matmul(gates::S(), gates::S()), gates::Z()), 1e-12);
}

TEST(Gates, DaggerPairs) {
  const auto id = ComplexMatrix::identity(2);
  EXPECT_LT(max_abs_diff(matmul(gates::S(), gates::Sdg()), id), 1e-15);
  EXPECT_LT(max_abs_diff(matmul(gates::T(), gates::Tdg()), id), 1e-15);
}

TEST(Gates, RotationsComposeAdditively) {
  for (double a : {0.3, -1.2}) {
    for (double b : {0.9, 2.5}) {
      EXPECT_LT(max_abs_diff(matmul(gates::RZ(a), gates::RZ(b)),
                             gates::RZ(a + b)),
                1e-12);
      EXPECT_LT(max_abs_diff(matmul(gates::RX(a), gates::RX(b)),
                             gates::RX(a + b)),
                1e-12);
      EXPECT_LT(max_abs_diff(matmul(gates::RY(a), gates::RY(b)),
                             gates::RY(a + b)),
                1e-12);
    }
  }
}

TEST(Gates, RotationAtZeroIsIdentity) {
  const auto id = ComplexMatrix::identity(2);
  EXPECT_LT(max_abs_diff(gates::RX(0.0), id), 1e-15);
  EXPECT_LT(max_abs_diff(gates::RY(0.0), id), 1e-15);
  EXPECT_LT(max_abs_diff(gates::RZ(0.0), id), 1e-15);
  EXPECT_LT(max_abs_diff(gates::Phase(0.0), id), 1e-15);
}

TEST(Gates, RXPiIsMinusIX) {
  const auto expected = scale(gates::X(), std::complex<double>(0.0, -1.0));
  EXPECT_LT(max_abs_diff(gates::RX(kPi), expected), 1e-12);
}

TEST(Gates, PhaseVersusRZGlobalPhase) {
  // P(φ) = e^{iφ/2}·RZ(φ).
  const auto lhs = gates::Phase(1.3);
  const auto rhs = scale(gates::RZ(1.3),
                         std::exp(std::complex<double>(0.0, 1.3 / 2.0)));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-12);
}

TEST(Gates, RXConjugatesZToY) {
  // RX(π/2)†·Z·RX(π/2) = Y — the Trotter basis change for Y letters.
  const auto rx = gates::RX(kPi / 2.0);
  const auto conj = matmul(adjoint(rx), matmul(gates::Z(), rx));
  EXPECT_LT(max_abs_diff(conj, gates::Y()), 1e-12);
}

}  // namespace
}  // namespace qtda
