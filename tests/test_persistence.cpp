// Tests for topology/persistence.hpp.
#include "topology/persistence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "topology/betti.hpp"
#include "topology/random_complex.hpp"

namespace qtda {
namespace {

Filtration circle_filtration(std::size_t n) {
  // Points on the unit circle, filtration capped below the second-neighbour
  // chord 2·sin(2π/n): only the n-cycle enters, so exactly one loop is born
  // (at the nearest-neighbour chord) and stays essential.
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * static_cast<double>(i) /
                         static_cast<double>(n);
    points.push_back({std::cos(angle), std::sin(angle)});
  }
  const double cap = 1.8 * std::sin(2.0 * M_PI / static_cast<double>(n));
  return rips_filtration(PointCloud(points), cap, 2);
}

TEST(Persistence, SingleVertexIsEssential) {
  const Filtration f({{Simplex{0}, 0.0}});
  const auto diagram = compute_persistence(f);
  ASSERT_EQ(diagram.pairs().size(), 1u);
  EXPECT_TRUE(diagram.pairs()[0].essential);
  EXPECT_EQ(diagram.pairs()[0].dimension, 0);
  EXPECT_EQ(diagram.essential_count(0), 1u);
}

TEST(Persistence, EdgeMergesTwoComponents) {
  const Filtration f(
      {{Simplex{0}, 0.0}, {Simplex{1}, 0.0}, {Simplex{0, 1}, 1.0}});
  const auto diagram = compute_persistence(f);
  // One essential component; one component born at 0 dies at 1.
  EXPECT_EQ(diagram.essential_count(0), 1u);
  const auto h0 = diagram.pairs_in_dimension(0);
  ASSERT_EQ(h0.size(), 2u);
  bool found_dying = false;
  for (const auto& p : h0) {
    if (!p.essential) {
      EXPECT_DOUBLE_EQ(p.birth, 0.0);
      EXPECT_DOUBLE_EQ(p.death, 1.0);
      found_dying = true;
    }
  }
  EXPECT_TRUE(found_dying);
}

TEST(Persistence, HollowTriangleLoopIsEssentialIn1d) {
  const Filtration f({{Simplex{0}, 0.0},
                      {Simplex{1}, 0.0},
                      {Simplex{2}, 0.0},
                      {Simplex{0, 1}, 1.0},
                      {Simplex{1, 2}, 1.0},
                      {Simplex{0, 2}, 1.0}});
  const auto diagram = compute_persistence(f);
  EXPECT_EQ(diagram.essential_count(1), 1u);
  EXPECT_EQ(diagram.essential_count(0), 1u);
}

TEST(Persistence, FilledTriangleKillsLoop) {
  const Filtration f({{Simplex{0}, 0.0},
                      {Simplex{1}, 0.0},
                      {Simplex{2}, 0.0},
                      {Simplex{0, 1}, 1.0},
                      {Simplex{1, 2}, 1.0},
                      {Simplex{0, 2}, 1.0},
                      {Simplex{0, 1, 2}, 2.0}});
  const auto diagram = compute_persistence(f);
  EXPECT_EQ(diagram.essential_count(1), 0u);
  const auto h1 = diagram.pairs_in_dimension(1);
  ASSERT_EQ(h1.size(), 1u);
  EXPECT_DOUBLE_EQ(h1[0].birth, 1.0);
  EXPECT_DOUBLE_EQ(h1[0].death, 2.0);
  EXPECT_DOUBLE_EQ(h1[0].persistence(), 1.0);
}

TEST(Persistence, CircleLoopBirthScale) {
  const std::size_t n = 10;
  const auto diagram = compute_persistence(circle_filtration(n));
  EXPECT_EQ(diagram.essential_count(0), 1u);
  EXPECT_EQ(diagram.essential_count(1), 1u);
  // The loop is born when the last nearest-neighbour chord arrives.
  const double chord = 2.0 * std::sin(M_PI / static_cast<double>(n));
  bool found = false;
  for (const auto& p : diagram.pairs_in_dimension(1)) {
    if (p.essential) {
      EXPECT_NEAR(p.birth, chord, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

class PersistentBettiMatchesDirect
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PersistentBettiMatchesDirect, BettiAtEqualsClassicalBetti) {
  // β_k(ε) from the diagram must equal the classical Betti number of the
  // subcomplex at ε, at every scale — a strong end-to-end property.
  Rng rng(GetParam() * 5 + 2);
  PointCloud cloud(random_point_cloud(9, 2, rng));
  const auto filtration = rips_filtration(cloud, 0.9, 2);
  const auto diagram = compute_persistence(filtration);
  for (double eps : {0.1, 0.25, 0.4, 0.55, 0.7, 0.85}) {
    const auto complex = filtration.complex_at(eps);
    for (int k = 0; k <= 1; ++k) {
      const std::size_t classical =
          complex.count(k) == 0 ? 0 : betti_number(complex, k);
      EXPECT_EQ(diagram.betti_at(k, eps), classical)
          << "seed=" << GetParam() << " eps=" << eps << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistentBettiMatchesDirect,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Persistence, PersistentBettiIsMonotoneInD) {
  Rng rng(91);
  PointCloud cloud(random_point_cloud(8, 2, rng));
  const auto diagram =
      compute_persistence(rips_filtration(cloud, 1.0, 2));
  // β^{b,d} can only shrink as d grows (classes die, none are added).
  for (double b : {0.3, 0.5}) {
    std::size_t previous = diagram.persistent_betti(0, b, b);
    for (double d = b + 0.1; d <= 1.0; d += 0.1) {
      const std::size_t current = diagram.persistent_betti(0, b, d);
      EXPECT_LE(current, previous);
      previous = current;
    }
  }
}

TEST(Persistence, PersistentBettiValidation) {
  const auto diagram = compute_persistence(Filtration({{Simplex{0}, 0.0}}));
  EXPECT_THROW(diagram.persistent_betti(0, 1.0, 0.5), Error);
}

}  // namespace
}  // namespace qtda
