// Tests for core/padding.hpp and core/scaling.hpp.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/padding.hpp"
#include "core/scaling.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "quantum/types.hpp"

namespace qtda {
namespace {

RealMatrix paper_delta1() {
  return RealMatrix{{3, 0, 0, 0, 0, 0},  {0, 3, 0, -1, -1, 0},
                    {0, 0, 3, -1, -1, 0}, {0, -1, -1, 2, 1, -1},
                    {0, -1, -1, 1, 2, 1}, {0, 0, 0, -1, 1, 2}};
}

TEST(Padding, PadsToNextPowerOfTwo) {
  const auto padded = pad_laplacian(paper_delta1());
  EXPECT_EQ(padded.num_qubits, 3u);
  EXPECT_EQ(padded.matrix.rows(), 8u);
  EXPECT_EQ(padded.original_dim, 6u);
  EXPECT_DOUBLE_EQ(padded.lambda_max, 6.0);
}

TEST(Padding, PaperEq18Exactly) {
  // Eq. (18): original block preserved, padding block (λmax/2)·I = 3·I.
  const auto padded = pad_laplacian(paper_delta1());
  const auto original = paper_delta1();
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_DOUBLE_EQ(padded.matrix(i, j), original(i, j));
  EXPECT_DOUBLE_EQ(padded.matrix(6, 6), 3.0);
  EXPECT_DOUBLE_EQ(padded.matrix(7, 7), 3.0);
  EXPECT_DOUBLE_EQ(padded.matrix(6, 7), 0.0);
  EXPECT_DOUBLE_EQ(padded.matrix(5, 6), 0.0);
}

TEST(Padding, PowerOfTwoInputGainsNoPadding) {
  const auto padded = pad_laplacian(RealMatrix::identity(4));
  EXPECT_EQ(padded.matrix.rows(), 4u);
  EXPECT_EQ(padded.num_qubits, 2u);
}

TEST(Padding, OneByOnePadsToOneQubit) {
  const auto padded = pad_laplacian(RealMatrix{{2.0}});
  EXPECT_EQ(padded.num_qubits, 1u);
  EXPECT_EQ(padded.matrix.rows(), 2u);
  EXPECT_DOUBLE_EQ(padded.matrix(1, 1), 1.0);  // λmax/2 = 1
}

TEST(Padding, IdentitySchemeAddsNoKernel) {
  // The padding block must not contribute zero eigenvalues.
  const auto padded = pad_laplacian(paper_delta1());
  const std::size_t kernel = count_zero_eigenvalues(padded.matrix);
  const std::size_t original_kernel =
      count_zero_eigenvalues(paper_delta1());
  EXPECT_EQ(kernel, original_kernel);
  EXPECT_EQ(kernel, 1u);  // β1 of the worked example
}

TEST(Padding, ZeroSchemeInflatesKernel) {
  // The failure mode the paper warns about: zero padding adds
  // 2^q − |S_k| ghost zeros.
  const auto padded = pad_laplacian(paper_delta1(), PaddingScheme::kZero);
  EXPECT_EQ(count_zero_eigenvalues(padded.matrix), 1u + 2u);
}

TEST(Padding, ZeroLaplacianUsesFloor) {
  // Fully disconnected complex: Δ = 0.  λmax floors at 1 so the padding
  // block (0.5·I) stays separated from the kernel.
  const auto padded = pad_laplacian(RealMatrix(3, 3));
  EXPECT_DOUBLE_EQ(padded.lambda_max, 1.0);
  EXPECT_DOUBLE_EQ(padded.matrix(3, 3), 0.5);
  EXPECT_EQ(count_zero_eigenvalues(padded.matrix), 3u);
}

TEST(Padding, RejectsBadInput) {
  EXPECT_THROW(pad_laplacian(RealMatrix(2, 3)), Error);
  EXPECT_THROW(pad_laplacian(RealMatrix{{0, 1}, {2, 0}}), Error);
}

TEST(Scaling, EigenvaluesLandInZeroTwoPi) {
  const auto padded = pad_laplacian(paper_delta1());
  const auto scaled = rescale_laplacian(padded);
  const auto values = symmetric_eigenvalues(scaled.matrix);
  for (double v : values) {
    EXPECT_GE(v, -1e-9);
    EXPECT_LT(v, kTwoPi);
  }
}

TEST(Scaling, WorkedExampleDeltaEqualsLambdaMax) {
  // Appendix A takes δ = λmax = 6 so H = Δ̃ exactly.
  const auto padded = pad_laplacian(paper_delta1());
  const auto scaled = rescale_laplacian(padded, /*delta=*/6.0);
  EXPECT_DOUBLE_EQ(scaled.scale, 1.0);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_DOUBLE_EQ(scaled.matrix(i, j), padded.matrix(i, j));
}

TEST(Scaling, PhaseMapping) {
  const auto padded = pad_laplacian(paper_delta1());
  const auto scaled = rescale_laplacian(padded, 6.0);
  EXPECT_DOUBLE_EQ(scaled.eigenvalue_to_phase(0.0), 0.0);
  EXPECT_NEAR(scaled.eigenvalue_to_phase(6.0), 6.0 / kTwoPi, 1e-12);
}

TEST(Scaling, DeltaValidation) {
  const auto padded = pad_laplacian(paper_delta1());
  EXPECT_THROW(rescale_laplacian(padded, 0.0), Error);
  EXPECT_THROW(rescale_laplacian(padded, 7.0), Error);  // > 2π
  EXPECT_NO_THROW(rescale_laplacian(padded, kTwoPi));
}

TEST(Scaling, DefaultDeltaIsJustBelowTwoPi) {
  EXPECT_LT(default_delta(), kTwoPi);
  EXPECT_GT(default_delta(), 0.9 * kTwoPi);
}

TEST(Scaling, KernelIsScaleInvariant) {
  const auto padded = pad_laplacian(paper_delta1());
  const auto scaled = rescale_laplacian(padded);
  EXPECT_EQ(count_zero_eigenvalues(scaled.matrix),
            count_zero_eigenvalues(padded.matrix));
}

}  // namespace
}  // namespace qtda
