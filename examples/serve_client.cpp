/// \file serve_client.cpp
/// \brief Command-line client for a running qtda_serve daemon.
///
///   serve_client --socket /tmp/qtda_serve.sock --eps 1.0 --k 1 --t 4
///                --shots 1000 --seed 42 --points "0,0;1,0;0.5,0.87"
///   serve_client --socket /tmp/qtda_serve.sock --stats
///   serve_client --socket /tmp/qtda_serve.sock --shutdown
///
/// With no --points, sends a demo request for the unit circle (8 points,
/// β₁ = 1).  Prints the raw response line — scripts can parse the key=value
/// pairs directly.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "serve/client.hpp"
#include "serve/transport.hpp"

namespace {

using namespace qtda;

std::vector<std::vector<double>> parse_cli_points(const std::string& text) {
  // Reuse the protocol's own parser by round-tripping through a request
  // line — guarantees the CLI accepts exactly what the wire accepts.
  return parse_request("estimate points=" + text).points;
}

std::vector<std::vector<double>> demo_circle() {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 8; ++i) {
    const double angle = 6.283185307179586 * i / 8.0;
    points.push_back({std::cos(angle), std::sin(angle)});
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string path = args.get_string("socket", "/tmp/qtda_serve.sock");
  ServeClient client(connect_unix(path));

  if (args.get_bool("stats")) {
    std::printf("%s\n", client.stats().c_str());
    return 0;
  }
  if (args.get_bool("shutdown")) {
    client.shutdown();
    std::printf("server acknowledged shutdown\n");
    return 0;
  }

  EstimateRequest request;
  const std::string points = args.get_string("points", "");
  request.points = points.empty() ? demo_circle() : parse_cli_points(points);
  request.epsilon = args.get_double("eps", 1.0);
  request.k = static_cast<int>(args.get_int("k", 1));
  request.options.precision_qubits =
      static_cast<std::size_t>(args.get_int("t", 4));
  request.options.shots = static_cast<std::size_t>(args.get_int("shots", 1000));
  request.options.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  request.deadline_ms =
      static_cast<std::uint64_t>(args.get_int("deadline-ms", 0));

  const std::string id = client.send(request);
  const EstimateResponse response = client.receive(id);
  std::printf("%s\n", format_response(response).c_str());
  return response.ok ? 0 : 1;
}
