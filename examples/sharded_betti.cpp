/// \file sharded_betti.cpp
/// \brief CLI driver for the pluggable engines: a random flag complex →
/// sparse Δ_k → matrix-free QPE on the simulator selected by name, with the
/// shard count and noise model plumbed from the command line through
/// EstimatorOptions.
///
/// Build & run:
///   ./build/examples/example_sharded_betti --simulator sharded-statevector
///       --shards 4 --vertices 8 --verify
///   ./build/examples/example_sharded_betti --simulator density-matrix
///       --noise 0.02 --verify     # exact channels vs trajectory ensemble
///
/// Flags: --simulator <name>  engine (default sharded-statevector)
///        --shards <n>        slab/worker count (0 = hardware concurrency)
///        --vertices <n>      random flag-complex size (default 8)
///        --dimension <k>     homology dimension (default 1)
///        --precision <t>     QPE precision qubits (default 4)
///        --shots <n>         measurement shots (default 20000)
///        --noise <p>         depolarizing strength per touched qubit
///        --trajectories <n>  ensemble size for the density verify (200)
///        --seed <n>          RNG seed (default 29)
///        --stats             print the circuit compiler's report (gates
///                            before/after fusion, fused-block histogram),
///                            the peephole optimizer's, and a telemetry
///                            snapshot (spans, counters, per-op-kind time)
///                            for the very circuit the estimate executed
///        --verify            statevector engines: run the dense engine and
///                            demand bit-identity; density-matrix: check a
///                            run_noisy_trajectory ensemble converges to the
///                            exact-channel marginal of the same circuit
#include <cmath>
#include <cstdio>
#include <exception>

#include "common/cli.hpp"
#include "common/cpu_features.hpp"
#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/telemetry.hpp"
#include "core/betti_estimator.hpp"
#include "quantum/backend.hpp"
#include "quantum/compiler.hpp"
#include "quantum/optimizer.hpp"
#include "topology/betti.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

namespace {

/// Density-matrix verify: the trajectory sampler is an unbiased estimator of
/// the exact channel, so the ensemble mean of per-trajectory precision
/// marginals must approach the exact ρ marginal — per outcome, within a few
/// standard errors of the ensemble itself.
bool verify_trajectory_convergence(const qtda::Circuit& circuit,
                                   const qtda::EstimatorOptions& options,
                                   std::size_t trajectories) {
  using namespace qtda;
  std::vector<std::size_t> precision_wires(options.precision_qubits);
  for (std::size_t t = 0; t < precision_wires.size(); ++t)
    precision_wires[t] = t;

  // Built directly (not through make_simulator): this check is *about* the
  // exact-channel engine, so a QTDA_SIMULATOR override must not redirect it.
  DensityMatrixBackend backend(circuit.num_qubits());
  Rng channel_rng(options.seed);  // untouched: channels are exact
  backend.prepare_basis_state(0);
  backend.apply_circuit_with_noise(circuit, options.noise, channel_rng);
  const std::vector<double> exact =
      backend.marginal_probabilities(precision_wires);

  Rng rng(options.seed + 1);
  std::vector<double> sum(exact.size(), 0.0), sum_sq(exact.size(), 0.0);
  for (std::size_t i = 0; i < trajectories; ++i) {
    const Statevector psi = run_noisy_trajectory(circuit, options.noise, rng);
    const auto marginal = psi.marginal_probabilities(precision_wires);
    for (std::size_t m = 0; m < marginal.size(); ++m) {
      sum[m] += marginal[m];
      sum_sq[m] += marginal[m] * marginal[m];
    }
  }

  bool converged = true;
  const auto n = static_cast<double>(trajectories);
  for (std::size_t m = 0; m < exact.size(); ++m) {
    const double mean = sum[m] / n;
    const double variance = std::max(sum_sq[m] / n - mean * mean, 0.0);
    const double tolerance = 5.0 * std::sqrt(variance / n) + 1e-3;
    const bool ok = std::abs(mean - exact[m]) <= tolerance;
    if (!ok || m == 0) {
      std::printf("  outcome %zu: exact %.5f, ensemble %.5f (+-%.5f) -> %s\n",
                  m, exact[m], mean, tolerance, ok ? "ok" : "DIVERGED");
    }
    converged = converged && ok;
  }
  return converged;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qtda;
  const CliArgs args(argc, argv);
  try {
    // Fail fast on a typo'd QTDA_LOG_LEVEL / QTDA_TELEMETRY before any work.
    apply_log_level_from_env();
    telemetry::enabled();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }
  // --stats reports live telemetry (spans, per-op-kind execution time), so
  // collection must be on before the estimate below runs.
  if (args.get_bool("stats")) telemetry::set_enabled(true);
  const auto vertices = static_cast<std::size_t>(args.get_int("vertices", 8));
  const int k = static_cast<int>(args.get_int("dimension", 1));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 29));
  const std::string simulator_name =
      args.get_string("simulator", "sharded-statevector");

  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.precision_qubits =
      static_cast<std::size_t>(args.get_int("precision", 4));
  options.shots = static_cast<std::size_t>(args.get_int("shots", 20000));
  options.seed = seed;
  // The parser rejects unknown names with the list of valid ones — no
  // ad-hoc string matching in driver code.
  options.simulator = simulator_kind_from_name(simulator_name);
  options.simulator_shards =
      static_cast<std::size_t>(args.get_int("shards", 0));
  const double noise = args.get_double("noise", 0.0);
  options.noise = NoiseModel{noise, noise};

  Rng rng(seed);
  RandomComplexOptions complex_options;
  complex_options.num_vertices = vertices;
  complex_options.max_dimension = k + 1;
  SimplicialComplex complex = random_flag_complex(complex_options, rng);
  while (complex.count(k) == 0)
    complex = random_flag_complex(complex_options, rng);

  std::printf("sharded Betti estimation (valid simulators: %s)\n",
              simulator_kind_names().c_str());
  std::printf("complex: %zu vertices, %zu k-simplices (k = %d)\n", vertices,
              complex.count(k), k);

  const SparseMatrix laplacian = sparse_combinatorial_laplacian(complex, k);
  const BettiEstimate estimate =
      estimate_betti_from_sparse_laplacian(laplacian, options);
  std::printf("engine %s (shards = %zu): beta~_%d = %.4f -> %zu "
              "(classical %zu; %zu qubits, %zu gates)\n",
              simulator_name.c_str(), options.simulator_shards, k,
              estimate.estimated_betti, estimate.rounded_betti,
              betti_number(complex, k), estimate.total_qubits,
              estimate.circuit_gates);

  if (args.get_bool("stats")) {
    // The same circuit the estimate just executed, compiled under the very
    // policy the estimator used (noisy estimates run noise-slot plans, so
    // the report reflects that), next to the peephole optimizer's view.
    const Circuit circuit = build_qtda_circuit(laplacian, options);
    const ExecutionPlan plan =
        compile_circuit(circuit, estimator_compiler_options(options.noise));
    std::printf("compiler: %s", plan.stats().to_string().c_str());
    // Kernel dispatch of the run above: the probed CPU level, the level the
    // engines actually used (QTDA_SIMD caps it), and the amplitude scalar
    // (QTDA_PRECISION overrides the options default).
    const Precision precision =
        precision_from_env().value_or(options.precision);
    std::printf("kernels: simd %s (detected %s), precision %s\n",
                simd_level_name(active_simd_level()).c_str(),
                simd_level_name(detected_simd_level()).c_str(),
                precision_name(precision).c_str());
    OptimizerReport report;
    optimize_circuit(circuit, &report);
    std::printf(
        "optimizer: %zu -> %zu gates, depth %zu -> %zu (%zu pairs "
        "cancelled, %zu rotations merged, %zu dropped)\n",
        report.gates_before, report.gates_after, report.depth_before,
        report.depth_after, report.cancelled_pairs, report.merged_rotations,
        report.dropped_rotations);
    // Telemetry collected by the run above: pipeline spans (rips is absent
    // here — the complex is random, not a Rips build), estimator counters,
    // and the executor's per-op-kind time split.
    std::printf("%s",
                telemetry::render_text(telemetry::registry().snapshot())
                    .c_str());
  }

  if (args.get_bool("verify")) {
    if (options.simulator == SimulatorKind::kDensityMatrix) {
      // Exact channels have no bit-identical statevector counterpart;
      // instead demand the physics: trajectory ensembles converge to the
      // exact marginal of the very circuit the estimate just ran.
      const auto trajectories =
          static_cast<std::size_t>(args.get_int("trajectories", 200));
      std::printf("trajectory-ensemble convergence check (%zu trajectories, "
                  "noise %.3f):\n",
                  trajectories, noise);
      // The sparse overload rebuilds the literally identical matrix-free
      // circuit the estimate above executed — no densification round-trip.
      const Circuit circuit = build_qtda_circuit(laplacian, options);
      if (!verify_trajectory_convergence(circuit, options, trajectories))
        return 1;
    } else {
      EstimatorOptions dense_options = options;
      dense_options.simulator = SimulatorKind::kStatevector;
      const BettiEstimate reference =
          estimate_betti_from_sparse_laplacian(laplacian, dense_options);
      const bool identical =
          estimate.zero_counts == reference.zero_counts &&
          estimate.estimated_betti == reference.estimated_betti;
      std::printf("dense-engine check: zero counts %llu vs %llu -> %s\n",
                  static_cast<unsigned long long>(estimate.zero_counts),
                  static_cast<unsigned long long>(reference.zero_counts),
                  identical ? "bit-identical" : "MISMATCH");
      if (!identical) return 1;
    }
  }
  return 0;
}
