/// \file sharded_betti.cpp
/// \brief CLI driver for the slab-parallel engine: a random flag complex →
/// sparse Δ_k → matrix-free QPE on the simulator selected by name, with the
/// shard count plumbed from the command line through EstimatorOptions.
///
/// Build & run:
///   ./build/examples/example_sharded_betti --simulator sharded-statevector
///       --shards 4 --vertices 8 --verify
///
/// Flags: --simulator <name>  engine (default sharded-statevector)
///        --shards <n>        slab/worker count (0 = hardware concurrency)
///        --vertices <n>      random flag-complex size (default 8)
///        --dimension <k>     homology dimension (default 1)
///        --precision <t>     QPE precision qubits (default 4)
///        --shots <n>         measurement shots (default 20000)
///        --seed <n>          RNG seed (default 29)
///        --verify            also run the dense engine and compare
#include <cstdio>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "core/betti_estimator.hpp"
#include "topology/betti.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

int main(int argc, char** argv) {
  using namespace qtda;
  const CliArgs args(argc, argv);
  const auto vertices = static_cast<std::size_t>(args.get_int("vertices", 8));
  const int k = static_cast<int>(args.get_int("dimension", 1));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 29));
  const std::string simulator_name =
      args.get_string("simulator", "sharded-statevector");

  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitSparse;
  options.precision_qubits =
      static_cast<std::size_t>(args.get_int("precision", 4));
  options.shots = static_cast<std::size_t>(args.get_int("shots", 20000));
  options.seed = seed;
  // The parser rejects unknown names with the list of valid ones — no
  // ad-hoc string matching in driver code.
  options.simulator = simulator_kind_from_name(simulator_name);
  options.simulator_shards =
      static_cast<std::size_t>(args.get_int("shards", 0));

  Rng rng(seed);
  RandomComplexOptions complex_options;
  complex_options.num_vertices = vertices;
  complex_options.max_dimension = k + 1;
  SimplicialComplex complex = random_flag_complex(complex_options, rng);
  while (complex.count(k) == 0)
    complex = random_flag_complex(complex_options, rng);

  std::printf("sharded Betti estimation (valid simulators: %s)\n",
              simulator_kind_names().c_str());
  std::printf("complex: %zu vertices, %zu k-simplices (k = %d)\n", vertices,
              complex.count(k), k);

  const SparseMatrix laplacian = sparse_combinatorial_laplacian(complex, k);
  const BettiEstimate estimate =
      estimate_betti_from_sparse_laplacian(laplacian, options);
  std::printf("engine %s (shards = %zu): beta~_%d = %.4f -> %zu "
              "(classical %zu; %zu qubits, %zu gates)\n",
              simulator_name.c_str(), options.simulator_shards, k,
              estimate.estimated_betti, estimate.rounded_betti,
              betti_number(complex, k), estimate.total_qubits,
              estimate.circuit_gates);

  if (args.get_bool("verify")) {
    EstimatorOptions dense_options = options;
    dense_options.simulator = SimulatorKind::kStatevector;
    const BettiEstimate reference =
        estimate_betti_from_sparse_laplacian(laplacian, dense_options);
    const bool identical =
        estimate.zero_counts == reference.zero_counts &&
        estimate.estimated_betti == reference.estimated_betti;
    std::printf("dense-engine check: zero counts %llu vs %llu -> %s\n",
                static_cast<unsigned long long>(estimate.zero_counts),
                static_cast<unsigned long long>(reference.zero_counts),
                identical ? "bit-identical" : "MISMATCH");
    if (!identical) return 1;
  }
  return 0;
}
