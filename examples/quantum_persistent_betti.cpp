/// \file quantum_persistent_betti.cpp
/// \brief The paper's future-work item realised: estimating *persistent*
/// Betti numbers with the same QPE machinery, via the persistent
/// combinatorial Laplacian Δ_k^{b,d} (whose kernel dimension is β_k^{b,d}).
///
/// Demonstrates the scale-invariance pitch: a noisy circle produces several
/// short-lived loops; the ordinary β1(ε) fluctuates with ε while the
/// persistent β1^{b,d} cleanly isolates the one real loop.
///
/// Build & run:  ./build/examples/quantum_persistent_betti
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "core/persistent_estimator.hpp"
#include "topology/persistence.hpp"
#include "topology/persistent_laplacian.hpp"

int main(int argc, char** argv) {
  using namespace qtda;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("points", 12));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  std::printf("Quantum persistent Betti numbers (paper future work)\n");
  std::printf("====================================================\n\n");

  // Noisy circle with one strongly perturbed point to create a spurious
  // short-lived feature.
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle =
        2.0 * M_PI * static_cast<double>(i) / static_cast<double>(n);
    const double radius = 1.0 + rng.normal(0.0, 0.08);
    points.push_back({radius * std::cos(angle), radius * std::sin(angle)});
  }
  points.push_back({0.25, 0.1});  // interior noise point
  const PointCloud cloud(points);
  const auto filtration = rips_filtration(cloud, 1.4, 2);
  std::printf("noisy circle, %zu points, filtration of %zu simplices\n\n",
              cloud.size(), filtration.size());

  EstimatorOptions options;
  options.precision_qubits = 9;
  options.shots = 200000;

  // Ordinary quantum estimates β1(ε): scale-sensitive.
  std::printf("ordinary beta_1(eps) — quantum estimate vs classical:\n");
  std::printf("  %-8s %-14s %-10s\n", "eps", "quantum b1~", "classical");
  for (double eps : {0.5, 0.65, 0.8, 0.95}) {
    const auto complex = filtration.complex_at(eps);
    const auto estimate = estimate_betti(complex, 1, options);
    const auto diagram = compute_persistence(filtration);
    std::printf("  %-8.2f %-14.3f %-10zu\n", eps, estimate.estimated_betti,
                diagram.betti_at(1, eps));
  }

  // Persistent quantum estimates β1^{b,d}: only features alive across the
  // whole [b, d] window count.
  std::printf("\npersistent beta_1^{b,d} — quantum estimate vs classical "
              "(reduction algorithm):\n");
  std::printf("  %-14s %-14s %-10s\n", "(b, d)", "quantum", "classical");
  const auto diagram = compute_persistence(filtration);
  for (const auto& [b, d] : {std::pair{0.55, 0.7}, std::pair{0.55, 0.9},
                            std::pair{0.7, 0.95}, std::pair{0.8, 1.1}}) {
    const auto estimate =
        estimate_persistent_betti(filtration, 1, b, d, options);
    std::printf("  (%.2f, %.2f)   %-14.3f %-10zu\n", b, d,
                estimate.estimated_betti, diagram.persistent_betti(1, b, d));
  }
  std::printf("\nThe persistent numbers stay pinned at the circle's one real "
              "loop while the\nordinary numbers drift with eps — the "
              "invariance the paper's conclusion asks for.\n");
  return 0;
}
