/// \file pauli_trotter.cpp
/// \brief The circuit-construction machinery of the paper's Figs. 6–7:
/// Pauli decomposition of the Hamiltonian, Trotterized e^{iH} synthesis,
/// the peephole optimizer, and a gate-census comparison against the
/// dense-oracle QPE network.
///
/// Build & run:  ./build/examples/pauli_trotter
#include <cmath>
#include <cstdio>

#include "core/padding.hpp"
#include "core/scaling.hpp"
#include "linalg/matrix_exp.hpp"
#include "linalg/matrix_ops.hpp"
#include "quantum/executor.hpp"
#include "quantum/optimizer.hpp"
#include "quantum/pauli.hpp"
#include "quantum/qpe.hpp"
#include "quantum/trotter.hpp"
#include "topology/laplacian.hpp"
#include "topology/simplicial_complex.hpp"

int main() {
  using namespace qtda;
  std::printf("Circuit construction for e^(iH): decomposition, Trotter, "
              "optimization\n");
  std::printf("====================================================================\n\n");

  // The worked-example Hamiltonian (Eq. 18 with delta = lambda_max).
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{1, 2, 3}, Simplex{3, 4}, Simplex{3, 5}, Simplex{4, 5}}, true);
  const auto scaled = rescale_laplacian(
      pad_laplacian(combinatorial_laplacian(complex, 1)), 6.0);

  const auto hamiltonian = pauli_decompose(scaled.matrix).sorted();
  std::printf("Pauli decomposition: %zu terms (Eq. 19)\n",
              hamiltonian.size());
  std::size_t weight_total = 0;
  for (const auto& term : hamiltonian.terms())
    weight_total += term.string.weight();
  std::printf("mean Pauli weight: %.2f\n\n",
              static_cast<double>(weight_total) /
                  static_cast<double>(hamiltonian.size()));

  // Trotter circuits at several step counts; fidelity against the exact
  // unitary plus gate statistics before/after the optimizer.
  const auto exact = unitary_exp(scaled.matrix);
  std::printf("%-7s %-7s %-14s %-9s %-8s %-12s %-12s\n", "steps", "order",
              "max |U-U~|", "gates", "depth", "gates(opt)", "depth(opt)");
  for (const int order : {1, 2}) {
    for (const std::size_t steps : {1u, 4u, 16u}) {
      const Circuit circuit =
          trotter_circuit(hamiltonian, 1.0, {steps, order}, 3);
      // Probe the synthesized unitary column by column.
      double worst = 0.0;
      for (std::uint64_t col = 0; col < 8; ++col) {
        Statevector s(3);
        s.set_basis_state(col);
        s.apply_circuit(circuit);
        for (std::uint64_t row = 0; row < 8; ++row)
          worst = std::max(worst, std::abs(s.amplitude(row) - exact(row, col)));
      }
      OptimizerReport report;
      optimize_circuit(circuit, &report);
      std::printf("%-7zu %-7d %-14.6f %-9zu %-8zu %-12zu %-12zu\n", steps,
                  order, worst, report.gates_before, report.depth_before,
                  report.gates_after, report.depth_after);
    }
  }

  // Full QPE network sizes: dense oracle vs Trotterized oracle (Fig. 6).
  std::printf("\nQPE network (3 precision qubits, Fig. 6):\n");
  QpeLayout layout{3, 3, 0};
  const HamiltonianExponential exponential(scaled.matrix);
  const Circuit dense_qpe = build_qpe_circuit_dense(
      layout, [&](std::uint64_t power) {
        return exponential.unitary(static_cast<double>(power));
      });
  const Circuit trotter_qpe = build_qpe_circuit(
      layout, [&](Circuit& c, std::uint64_t power, std::size_t control) {
        const Circuit fragment = trotter_circuit(
            hamiltonian, static_cast<double>(power), {4, 2}, layout.total(),
            layout.precision_qubits);
        c.append_circuit(fragment.controlled_on(control));
      });
  std::printf("  dense oracle:   %4zu gates, depth %4zu\n",
              dense_qpe.gate_count(), dense_qpe.depth());
  std::printf("  trotter oracle: %4zu gates, depth %4zu\n",
              trotter_qpe.gate_count(), trotter_qpe.depth());
  std::printf("\nGate census of the Trotterized network:\n");
  for (const auto& [name, count] : trotter_qpe.gate_census())
    std::printf("  %-8s x %zu\n", name.c_str(), count);
  return 0;
}
