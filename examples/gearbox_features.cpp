/// \file gearbox_features.cpp
/// \brief The paper's §5 second experiment as a runnable example: six
/// condition-monitoring features per gearbox window → four 3-D points →
/// Rips complex → quantum Betti features → logistic regression.
///
/// Build & run:  ./build/examples/gearbox_features [--samples 120]
#include <cstdio>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "core/betti_estimator.hpp"
#include "data/features.hpp"
#include "data/gearbox.hpp"
#include "ml/dataset.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"
#include "topology/betti.hpp"
#include "topology/rips.hpp"

int main(int argc, char** argv) {
  using namespace qtda;
  const CliArgs args(argc, argv);
  const auto total = static_cast<std::size_t>(args.get_int("samples", 120));
  const auto healthy = total / 5;  // paper ratio: 51/255
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  std::printf("Gearbox fault detection from quantum Betti features\n");
  std::printf("===================================================\n\n");

  // 1. Synthetic gearbox windows reduced to six features each.
  GearboxSignalOptions signal_options;
  Rng rng(seed);
  const auto samples = generate_gearbox_feature_dataset(
      total, healthy, 512, signal_options, rng);
  std::printf("dataset: %zu samples (%zu healthy / %zu faulty), 6 features\n",
              samples.size(), healthy, total - healthy);

  // 2. Four 3-D points per sample; ε from the median cloud diameter.
  std::vector<PointCloud> clouds;
  std::vector<double> diameters;
  for (const auto& sample : samples) {
    clouds.push_back(feature_point_cloud(sample.features));
    double dmax = 0.0;
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = i + 1; j < 4; ++j)
        dmax = std::max(dmax, clouds.back().distance(i, j));
    diameters.push_back(dmax);
  }
  const double eps = 0.75 * median(diameters);
  std::printf("grouping scale eps = %.4f\n\n", eps);

  // 3. Quantum Betti features {estimated beta_0, beta_1} per sample.
  Dataset data;
  std::vector<double> exact_flat, estimated_flat;
  for (std::size_t i = 0; i < clouds.size(); ++i) {
    const auto complex = rips_complex(clouds[i], eps, 2);
    EstimatorOptions options;
    options.precision_qubits = 4;
    options.shots = 100;
    options.seed = seed * 17 + i;
    const auto b0 = estimate_betti(complex, 0, options);
    options.seed += 1;
    const auto b1 = estimate_betti(complex, 1, options);
    data.add({b0.estimated_betti, b1.estimated_betti}, samples[i].label);
    estimated_flat.push_back(b0.estimated_betti);
    estimated_flat.push_back(b1.estimated_betti);
    exact_flat.push_back(static_cast<double>(betti_number(complex, 0)));
    exact_flat.push_back(static_cast<double>(betti_number(complex, 1)));
  }
  std::printf("Betti-estimate MAE vs classical: %.3f\n",
              mean_absolute_error(exact_flat, estimated_flat));

  // 4. Classifier with the paper's 20%/80% train/validation split.
  Rng split_rng(seed + 1);
  const auto split = stratified_split(data, 0.2, split_rng);
  StandardScaler scaler;
  scaler.fit(split.train.features);
  Dataset train{scaler.transform(split.train.features), split.train.labels};
  Dataset val{scaler.transform(split.validation.features),
              split.validation.labels};
  LogisticRegression model;
  model.fit(train);

  const auto train_predictions = model.predict_all(train.features);
  const auto val_predictions = model.predict_all(val.features);
  std::printf("training accuracy:   %.3f (%zu samples)\n",
              accuracy(train.labels, train_predictions), train.size());
  std::printf("validation accuracy: %.3f (%zu samples)\n",
              accuracy(val.labels, val_predictions), val.size());
  const auto confusion = confusion_matrix(val.labels, val_predictions);
  std::printf("validation confusion: TP=%zu TN=%zu FP=%zu FN=%zu "
              "(precision %.3f, recall %.3f)\n",
              confusion.true_positive, confusion.true_negative,
              confusion.false_positive, confusion.false_negative,
              confusion.precision(), confusion.recall());
  return 0;
}
