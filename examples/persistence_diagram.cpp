/// \file persistence_diagram.cpp
/// \brief The paper's named future-work item, implemented: persistent Betti
/// numbers, which are invariant to the grouping-scale choice.  Computes the
/// persistence diagram of a noisy circle and prints the barcode plus the
/// β1(ε) curve, showing the scale-robust loop.
///
/// Build & run:  ./build/examples/persistence_diagram [--points 16]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "topology/persistence.hpp"

int main(int argc, char** argv) {
  using namespace qtda;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("points", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 4));

  std::printf("Persistent homology of a noisy circle (%zu points)\n", n);
  std::printf("==================================================\n\n");

  // Noisy circle sample.
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle =
        2.0 * M_PI * static_cast<double>(i) / static_cast<double>(n);
    const double radius = 1.0 + rng.normal(0.0, 0.05);
    points.push_back({radius * std::cos(angle), radius * std::sin(angle)});
  }
  const PointCloud cloud(points);

  const auto filtration = rips_filtration(cloud, 1.2, 2);
  std::printf("Rips filtration: %zu simplices up to scale 1.2\n\n",
              filtration.size());
  const auto diagram = compute_persistence(filtration);

  std::printf("H0 barcode (components; persistence > 0.01):\n");
  for (const auto& pair : diagram.pairs_in_dimension(0)) {
    if (!pair.essential && pair.persistence() < 0.01) continue;
    if (pair.essential)
      std::printf("  [%6.3f, inf)      <- the surviving component\n",
                  pair.birth);
    else
      std::printf("  [%6.3f, %6.3f)\n", pair.birth, pair.death);
  }

  std::printf("\nH1 barcode (loops; persistence > 0.01):\n");
  for (const auto& pair : diagram.pairs_in_dimension(1)) {
    if (!pair.essential && pair.persistence() < 0.01) continue;
    if (pair.essential)
      std::printf("  [%6.3f, inf)      <- the circle's loop\n", pair.birth);
    else
      std::printf("  [%6.3f, %6.3f)\n", pair.birth, pair.death);
  }

  std::printf("\nbeta_1(eps) curve (a single scale-stable plateau at 1 marks "
              "the loop):\n  eps : ");
  for (double eps = 0.1; eps <= 1.15; eps += 0.1) std::printf("%5.2f ", eps);
  std::printf("\n  b1  : ");
  for (double eps = 0.1; eps <= 1.15; eps += 0.1)
    std::printf("%5zu ", diagram.betti_at(1, eps));
  std::printf("\n\nPersistent Betti numbers beta_1^{b,d} (b = 0.5):\n");
  for (double d = 0.5; d <= 1.1; d += 0.2)
    std::printf("  beta_1^{0.5, %.1f} = %zu\n", d,
                diagram.persistent_betti(1, 0.5, d));
  return 0;
}
