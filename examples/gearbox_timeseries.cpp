/// \file gearbox_timeseries.cpp
/// \brief The paper's §5 first experiment as a runnable example: raw
/// vibration windows (500 samples) → Takens delay embedding → Rips →
/// quantum Betti features → fault classifier.
///
/// Build & run:  ./build/examples/gearbox_timeseries [--windows 16]
#include <cstdio>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "core/pipeline.hpp"
#include "data/gearbox.hpp"
#include "data/windowing.hpp"
#include "ml/dataset.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"
#include "ml/takens.hpp"

int main(int argc, char** argv) {
  using namespace qtda;
  const CliArgs args(argc, argv);
  const auto per_class = static_cast<std::size_t>(args.get_int("windows", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 9));

  std::printf("Gearbox fault detection from raw time series (Takens + QTDA)\n");
  std::printf("=============================================================\n\n");

  GearboxSignalOptions signal_options;
  Rng rng(seed);
  const auto healthy_signal = generate_gearbox_signal(
      GearboxCondition::kHealthy, 500 * per_class, signal_options, rng);
  const auto faulty_signal = generate_gearbox_signal(
      GearboxCondition::kSurfaceFault, 500 * per_class, signal_options, rng);
  std::printf("recordings: 2 x %zu samples -> %zu windows of 500\n",
              healthy_signal.size(), 2 * per_class);

  TakensOptions takens_options;
  takens_options.dimension = 3;
  takens_options.delay = 4;
  takens_options.stride = 10;

  // Pass 1: embed every window; derive one global grouping scale from the
  // population (per-window scales would normalize away the class signal).
  std::vector<PointCloud> clouds;
  std::vector<int> labels;
  const auto embed_windows = [&](const std::vector<double>& signal,
                                 int label) {
    for (const auto& window : split_windows(signal, 500)) {
      clouds.push_back(takens_embedding(window, takens_options));
      labels.push_back(label);
    }
  };
  embed_windows(healthy_signal, 0);
  embed_windows(faulty_signal, 1);
  std::vector<double> diameters;
  for (const auto& cloud : clouds) {
    double dmax = 0.0;
    for (std::size_t i = 0; i < cloud.size(); ++i)
      for (std::size_t j = i + 1; j < cloud.size(); ++j)
        dmax = std::max(dmax, cloud.distance(i, j));
    diameters.push_back(dmax);
  }
  const double eps = 0.15 * median(diameters);

  // Pass 2: quantum Betti features at the shared scale.
  Dataset data;
  for (std::size_t w = 0; w < clouds.size(); ++w) {
    PipelineOptions options;
    options.epsilon = eps;
    options.dimensions = {0, 1};
    options.estimator.precision_qubits = 5;
    options.estimator.shots = 1000;
    options.estimator.seed = seed + w;
    const auto features = extract_betti_features(clouds[w], options);
    data.add({features.estimated[0], features.estimated[1]}, labels[w]);
  }
  std::printf("embedded each window to %zu-point 3-D cloud; extracted "
              "{beta0, beta1} via QPE (5 precision qubits)\n\n",
              takens_output_size(500, takens_options) / takens_options.stride);

  Rng split_rng(seed + 1);
  const auto split = stratified_split(data, 0.5, split_rng);
  StandardScaler scaler;
  scaler.fit(split.train.features);
  Dataset train{scaler.transform(split.train.features), split.train.labels};
  Dataset val{scaler.transform(split.validation.features),
              split.validation.labels};
  LogisticRegression model;
  model.fit(train);
  std::printf("training accuracy:   %.3f\n",
              accuracy(train.labels, model.predict_all(train.features)));
  std::printf("validation accuracy: %.3f  (paper reports 1.000 on the SEU "
              "gearbox data)\n",
              accuracy(val.labels, model.predict_all(val.features)));
  return 0;
}
