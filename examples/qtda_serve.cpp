/// \file qtda_serve.cpp
/// \brief The qtda_serve daemon: long-running Betti estimation service.
///
/// Default mode binds a Unix stream socket (or a TCP port with `--tcp`)
/// and serves the line protocol until a client sends `shutdown` (or the
/// process receives SIGINT/SIGTERM, which the parked main thread
/// translates into a graceful stop):
///
///   qtda_serve --socket /tmp/qtda.sock --cache-mb 256
///   qtda_serve --tcp 7421 --workers 2
///
/// `--smoke` instead drives an in-process loopback end to end — cold
/// request, warm repeat (asserting the plan cache hit and bit-identical
/// results), a concurrent burst exercising the batcher, and a clean
/// shutdown — then repeats a round trip over a real TCP socket, exiting
/// non-zero on any violation.  CI runs this as the serve-smoke step.
///
/// Setting `QTDA_CHAOS=<seed>:<spec>` (see serve/chaos.hpp) wraps the
/// transport in deterministic fault injection, in both daemon and smoke
/// modes.  The chaos smoke keeps the bit-identity assertions — results
/// surviving retries must equal fault-free ones — but drops the
/// cache-state and metrics assertions, which retries legitimately perturb.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/telemetry.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"

namespace {

using namespace qtda;

BettiServer* g_signal_server = nullptr;

void handle_signal(int) {
  if (g_signal_server != nullptr) g_signal_server->request_stop();
}

std::vector<std::vector<double>> circle_points(std::size_t n, double radius) {
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 6.283185307179586 * static_cast<double>(i) /
                         static_cast<double>(n);
    points.push_back({radius * std::cos(angle), radius * std::sin(angle)});
  }
  return points;
}

EstimateRequest smoke_request(std::uint64_t seed) {
  EstimateRequest request;
  request.points = circle_points(8, 1.0);
  request.epsilon = 1.0;
  request.k = 1;
  request.options.backend = EstimatorBackend::kCircuitSparse;
  request.options.precision_qubits = 3;
  request.options.shots = 512;
  request.options.seed = seed;
  return request;
}

int fail(const char* what) {
  std::fprintf(stderr, "serve smoke FAILED: %s\n", what);
  return 1;
}

/// Retry policy for smoke clients: single-shot when fault-free, resilient
/// under chaos (the injected faults are transient by construction).
RetryPolicy smoke_policy(bool chaos, std::uint64_t jitter_seed) {
  RetryPolicy policy;
  if (chaos) {
    policy.max_attempts = 12;
    policy.initial_backoff_ms = 1;
    policy.max_backoff_ms = 32;
    policy.request_timeout_ms = 2000;
  }
  policy.jitter_seed = jitter_seed;
  return policy;
}

void print_chaos_stats(const char* where, const FaultInjectingTransport& t) {
  const ChaosStats stats = t.stats();
  std::printf(
      "chaos[%s]: injected=%llu (drop_r=%llu delay_r=%llu corrupt_r=%llu "
      "drop_w=%llu torn_w=%llu fail_acc=%llu)\n",
      where, static_cast<unsigned long long>(stats.total()),
      static_cast<unsigned long long>(stats.dropped_reads),
      static_cast<unsigned long long>(stats.delayed_reads),
      static_cast<unsigned long long>(stats.corrupted_reads),
      static_cast<unsigned long long>(stats.dropped_writes),
      static_cast<unsigned long long>(stats.torn_writes),
      static_cast<unsigned long long>(stats.failed_accepts));
}

/// In-process end-to-end exercise over the loopback transport.
int run_loopback_smoke(const std::optional<FaultPlan>& chaos_plan) {
  ServerOptions options;
  options.cache.budget_bytes = std::size_t{64} << 20;
  BettiServer server(options);
  LoopbackTransport loopback;
  std::unique_ptr<FaultInjectingTransport> chaotic;
  Transport* transport = &loopback;
  if (chaos_plan.has_value()) {
    chaotic = std::make_unique<FaultInjectingTransport>(loopback, *chaos_plan);
    transport = chaotic.get();
  }
  const bool chaos = chaos_plan.has_value();
  server.start(*transport);

  // Cold request: every cache level misses (fault-free runs only — a
  // chaos retry legitimately warms the caches before succeeding).
  ServeClient client([&loopback] { return loopback.connect(); },
                     smoke_policy(chaos, /*jitter_seed=*/11));
  const EstimateResponse cold = client.estimate(smoke_request(7));
  if (!cold.ok) return fail(cold.error.c_str());
  if (!chaos && (cold.plan_hit || cold.complex_hit))
    return fail("cold request hit");

  // Warm repeat: payload bit-identical to the cold run — under chaos too,
  // which is the retry-determinism guarantee.
  const EstimateResponse warm = client.estimate(smoke_request(7));
  if (!warm.ok) return fail(warm.error.c_str());
  if (!chaos && (!warm.plan_hit || !warm.complex_hit || !warm.laplacian_hit))
    return fail("warm request missed a cache level");
  if (warm.estimate.zero_counts != cold.estimate.zero_counts ||
      warm.estimate.estimated_betti != cold.estimate.estimated_betti)
    return fail("warm result deviated from cold result");

  // Concurrent burst from several connections: exercises admission,
  // batching, and the completion queue (and, under chaos, concurrent
  // retry/reconnect paths).
  std::atomic<int> burst_failures{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < 4; ++d) {
    drivers.emplace_back([&loopback, &burst_failures, chaos, d] {
      ServeClient burst_client(
          [&loopback] { return loopback.connect(); },
          smoke_policy(chaos, /*jitter_seed=*/static_cast<std::uint64_t>(
                                  20 + d)));
      for (int i = 0; i < 8; ++i) {
        const auto seed = static_cast<std::uint64_t>(100 + d * 8 + i);
        try {
          const EstimateResponse response =
              burst_client.estimate(smoke_request(seed));
          if (!response.ok) burst_failures.fetch_add(1);
        } catch (const std::exception&) {
          burst_failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();
  if (burst_failures.load() != 0) return fail("burst request errored");

  if (!chaos) {
    const std::string stats = client.stats();
    std::printf("%s\n", stats.c_str());

    // Metrics scrape: the burst above must have left non-zero request
    // counters, cache traffic on every level, and populated latency
    // histograms — this is the observability contract CI asserts.
    const MetricsReport metrics = client.metrics();
    if (metrics.counters.at("serve.admitted") < 34)
      return fail("metrics verb lost admitted requests");
    if (metrics.counters.at("cache.plan.hits") == 0 ||
        metrics.counters.at("cache.plan.misses") == 0)
      return fail("metrics verb shows no plan-cache traffic");
    const auto request_latency = metrics.histograms.find("serve.request_ns");
    if (request_latency == metrics.histograms.end() ||
        request_latency->second.count < 34)
      return fail("request latency histogram incomplete");
    const auto queue_wait = metrics.histograms.find("serve.queue_wait_ns");
    if (queue_wait == metrics.histograms.end() ||
        queue_wait->second.count == 0)
      return fail("queue wait histogram empty");
    const auto evolve = metrics.histograms.find("span.evolve");
    if (evolve == metrics.histograms.end() || evolve->second.count == 0)
      return fail("evolve span histogram empty");
    const std::string prometheus = client.metrics_prometheus();
    if (prometheus.find("qtda_serve_admitted ") == std::string::npos ||
        prometheus.find("qtda_serve_request_ns_bucket") == std::string::npos ||
        prometheus.find("# EOF") == std::string::npos)
      return fail("prometheus exposition incomplete");
    client.shutdown();
  }
  server.stop();
  if (chaotic != nullptr) print_chaos_stats("loopback", *chaotic);
  return 0;
}

/// Round trip over a real TCP socket (ephemeral port on 127.0.0.1),
/// asserting the transport preserves bit-identity.
int run_tcp_smoke(const std::optional<FaultPlan>& chaos_plan) {
  ServerOptions options;
  options.cache.budget_bytes = std::size_t{64} << 20;
  BettiServer server(options);
  TcpTransport tcp(0);
  std::unique_ptr<FaultInjectingTransport> chaotic;
  Transport* transport = &tcp;
  if (chaos_plan.has_value()) {
    chaotic = std::make_unique<FaultInjectingTransport>(tcp, *chaos_plan);
    transport = chaotic.get();
  }
  const bool chaos = chaos_plan.has_value();
  server.start(*transport);

  ServeClient client([&tcp] { return connect_tcp(tcp.host(), tcp.port()); },
                     smoke_policy(chaos, /*jitter_seed=*/31));
  const EstimateResponse first = client.estimate(smoke_request(7));
  if (!first.ok) return fail(first.error.c_str());
  const EstimateResponse second = client.estimate(smoke_request(7));
  if (!second.ok) return fail(second.error.c_str());
  if (first.estimate.zero_counts != second.estimate.zero_counts ||
      first.estimate.estimated_betti != second.estimate.estimated_betti)
    return fail("TCP results deviated between repeats");
  if (!chaos) client.shutdown();
  server.stop();
  if (chaotic != nullptr) print_chaos_stats("tcp", *chaotic);
  return 0;
}

int run_smoke() {
  std::optional<FaultPlan> chaos_plan;
  try {
    chaos_plan = fault_plan_from_env();
  } catch (const std::exception& error) {
    return fail(error.what());
  }
  if (chaos_plan.has_value())
    std::printf("serve smoke under chaos spec %s\n",
                chaos_plan->spec().c_str());
  const int loopback_result = run_loopback_smoke(chaos_plan);
  if (loopback_result != 0) return loopback_result;
  const int tcp_result = run_tcp_smoke(chaos_plan);
  if (tcp_result != 0) return tcp_result;
  std::printf("serve smoke OK: cold=miss warm=hit burst=32 tcp=ok%s\n",
              chaos_plan.has_value() ? " (chaos survived)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  // A peer that vanishes mid-write must surface as a failed send() on that
  // connection, not kill the whole daemon with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  try {
    // Fail fast on a typo'd QTDA_LOG_LEVEL / QTDA_TELEMETRY before binding
    // anything (QTDA_TRACE also arms the exit-time Chrome-trace writer).
    apply_log_level_from_env();
    telemetry::enabled();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }
  if (args.get_bool("smoke")) return run_smoke();

  const std::string path = args.get_string("socket", "/tmp/qtda_serve.sock");
  const int tcp_port = static_cast<int>(args.get_int("tcp", -1));
  ServerOptions options;
  options.cache.budget_bytes =
      static_cast<std::size_t>(args.get_int("cache-mb", 256)) << 20;
  options.cache.shards =
      static_cast<std::size_t>(args.get_int("cache-shards", 8));
  options.workers = static_cast<std::size_t>(args.get_int("workers", 1));
  options.batching = !args.get_bool("no-batching");
  options.telemetry = !args.get_bool("no-telemetry");
  options.max_queue = static_cast<std::size_t>(args.get_int("max-queue", 0));

  try {
    BettiServer server(options);
    std::unique_ptr<Transport> base;
    std::string listening_on;
    if (tcp_port >= 0) {
      auto tcp = std::make_unique<TcpTransport>(
          static_cast<std::uint16_t>(tcp_port));
      listening_on = tcp->host() + ":" + std::to_string(tcp->port());
      base = std::move(tcp);
    } else {
      base = std::make_unique<UnixSocketTransport>(path);
      listening_on = path;
    }
    std::unique_ptr<FaultInjectingTransport> chaotic;
    Transport* transport = base.get();
    if (const std::optional<FaultPlan> plan = fault_plan_from_env()) {
      chaotic = std::make_unique<FaultInjectingTransport>(*base, *plan);
      transport = chaotic.get();
      std::printf("chaos armed: %s\n", plan->spec().c_str());
    }
    g_signal_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    server.start(*transport);
    std::printf("qtda_serve listening on %s (cache %lld MiB, %s, %s)\n",
                listening_on.c_str(),
                static_cast<long long>(args.get_int("cache-mb", 256)),
                options.batching ? "batching on" : "batching off",
                options.telemetry ? "telemetry on" : "telemetry off");
    std::fflush(stdout);
    server.wait();
    server.stop();
    g_signal_server = nullptr;
    if (chaotic != nullptr) print_chaos_stats("daemon", *chaotic);
  } catch (const std::exception& error) {
    QTDA_ERROR << "qtda_serve failed: " << error.what();
    return 1;
  }
  std::printf("qtda_serve stopped\n");
  return 0;
}
