/// \file qtda_serve.cpp
/// \brief The qtda_serve daemon: long-running Betti estimation service.
///
/// Default mode binds a Unix stream socket and serves the line protocol
/// until a client sends `shutdown` (or the process receives SIGINT/SIGTERM,
/// which the parked main thread translates into a graceful stop):
///
///   qtda_serve --socket /tmp/qtda.sock --cache-mb 256
///
/// `--smoke` instead drives an in-process loopback end to end — cold
/// request, warm repeat (asserting the plan cache hit and bit-identical
/// results), a concurrent burst exercising the batcher, and a clean
/// shutdown — exiting non-zero on any violation.  CI runs this as the
/// serve-smoke step.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/telemetry.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"

namespace {

using namespace qtda;

BettiServer* g_signal_server = nullptr;

void handle_signal(int) {
  if (g_signal_server != nullptr) g_signal_server->request_stop();
}

std::vector<std::vector<double>> circle_points(std::size_t n, double radius) {
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 6.283185307179586 * static_cast<double>(i) /
                         static_cast<double>(n);
    points.push_back({radius * std::cos(angle), radius * std::sin(angle)});
  }
  return points;
}

EstimateRequest smoke_request(std::uint64_t seed) {
  EstimateRequest request;
  request.points = circle_points(8, 1.0);
  request.epsilon = 1.0;
  request.k = 1;
  request.options.backend = EstimatorBackend::kCircuitSparse;
  request.options.precision_qubits = 3;
  request.options.shots = 512;
  request.options.seed = seed;
  return request;
}

int fail(const char* what) {
  std::fprintf(stderr, "serve smoke FAILED: %s\n", what);
  return 1;
}

/// In-process end-to-end exercise over the loopback transport.
int run_smoke() {
  ServerOptions options;
  options.cache.budget_bytes = std::size_t{64} << 20;
  BettiServer server(options);
  LoopbackTransport transport;
  server.start(transport);

  // Cold request: every cache level misses.
  ServeClient client(transport.connect());
  const EstimateResponse cold = client.estimate(smoke_request(7));
  if (!cold.ok) return fail(cold.error.c_str());
  if (cold.plan_hit || cold.complex_hit) return fail("cold request hit");

  // Warm repeat: all levels hit, payload bit-identical to the cold run.
  const EstimateResponse warm = client.estimate(smoke_request(7));
  if (!warm.ok) return fail(warm.error.c_str());
  if (!warm.plan_hit || !warm.complex_hit || !warm.laplacian_hit)
    return fail("warm request missed a cache level");
  if (warm.estimate.zero_counts != cold.estimate.zero_counts ||
      warm.estimate.estimated_betti != cold.estimate.estimated_betti)
    return fail("warm result deviated from cold result");

  // Concurrent burst from several connections: exercises admission,
  // batching, and the completion queue.
  std::atomic<int> burst_failures{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < 4; ++d) {
    drivers.emplace_back([&transport, &burst_failures, d] {
      ServeClient burst_client(transport.connect());
      for (int i = 0; i < 8; ++i) {
        const auto seed = static_cast<std::uint64_t>(100 + d * 8 + i);
        const EstimateResponse response =
            burst_client.estimate(smoke_request(seed));
        if (!response.ok) burst_failures.fetch_add(1);
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();
  if (burst_failures.load() != 0) return fail("burst request errored");

  const std::string stats = client.stats();
  std::printf("%s\n", stats.c_str());

  // Metrics scrape: the burst above must have left non-zero request
  // counters, cache traffic on every level, and populated latency
  // histograms — this is the observability contract CI asserts.
  const MetricsReport metrics = client.metrics();
  if (metrics.counters.at("serve.admitted") < 34)
    return fail("metrics verb lost admitted requests");
  if (metrics.counters.at("cache.plan.hits") == 0 ||
      metrics.counters.at("cache.plan.misses") == 0)
    return fail("metrics verb shows no plan-cache traffic");
  const auto request_latency = metrics.histograms.find("serve.request_ns");
  if (request_latency == metrics.histograms.end() ||
      request_latency->second.count < 34)
    return fail("request latency histogram incomplete");
  const auto queue_wait = metrics.histograms.find("serve.queue_wait_ns");
  if (queue_wait == metrics.histograms.end() || queue_wait->second.count == 0)
    return fail("queue wait histogram empty");
  const auto evolve = metrics.histograms.find("span.evolve");
  if (evolve == metrics.histograms.end() || evolve->second.count == 0)
    return fail("evolve span histogram empty");
  const std::string prometheus = client.metrics_prometheus();
  if (prometheus.find("qtda_serve_admitted ") == std::string::npos ||
      prometheus.find("qtda_serve_request_ns_bucket") == std::string::npos ||
      prometheus.find("# EOF") == std::string::npos)
    return fail("prometheus exposition incomplete");

  client.shutdown();
  server.stop();
  std::printf("serve smoke OK: cold=miss warm=hit burst=32 shutdown=clean\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    // Fail fast on a typo'd QTDA_LOG_LEVEL / QTDA_TELEMETRY before binding
    // anything (QTDA_TRACE also arms the exit-time Chrome-trace writer).
    apply_log_level_from_env();
    telemetry::enabled();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }
  if (args.get_bool("smoke")) return run_smoke();

  const std::string path = args.get_string("socket", "/tmp/qtda_serve.sock");
  ServerOptions options;
  options.cache.budget_bytes =
      static_cast<std::size_t>(args.get_int("cache-mb", 256)) << 20;
  options.cache.shards =
      static_cast<std::size_t>(args.get_int("cache-shards", 8));
  options.workers = static_cast<std::size_t>(args.get_int("workers", 1));
  options.batching = !args.get_bool("no-batching");
  options.telemetry = !args.get_bool("no-telemetry");

  try {
    BettiServer server(options);
    UnixSocketTransport transport(path);
    g_signal_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    server.start(transport);
    std::printf("qtda_serve listening on %s (cache %lld MiB, %s, %s)\n",
                path.c_str(),
                static_cast<long long>(args.get_int("cache-mb", 256)),
                options.batching ? "batching on" : "batching off",
                options.telemetry ? "telemetry on" : "telemetry off");
    std::fflush(stdout);
    server.wait();
    server.stop();
    g_signal_server = nullptr;
  } catch (const std::exception& error) {
    QTDA_ERROR << "qtda_serve failed: " << error.what();
    return 1;
  }
  std::printf("qtda_serve stopped\n");
  return 0;
}
