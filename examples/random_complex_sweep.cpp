/// \file random_complex_sweep.cpp
/// \brief Miniature of the paper's §4 study: how shots and precision qubits
/// drive the Betti-estimate error on random simplicial complexes.
///
/// Build & run:  ./build/examples/random_complex_sweep [--n 8]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "core/betti_estimator.hpp"
#include "topology/betti.hpp"
#include "topology/laplacian.hpp"
#include "topology/random_complex.hpp"

int main(int argc, char** argv) {
  using namespace qtda;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 8));
  const auto reps = static_cast<std::size_t>(args.get_int("complexes", 12));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 21));

  std::printf("Betti-estimate error vs resources on %zu random flag "
              "complexes (n = %zu, k = 1)\n\n",
              reps, n);

  // Draw the instances once.
  Rng rng(seed);
  std::vector<RealMatrix> laplacians;
  std::vector<double> classical;
  while (laplacians.size() < reps) {
    RandomComplexOptions options;
    options.num_vertices = n;
    options.max_dimension = 2;
    const auto complex = random_flag_complex(options, rng);
    if (complex.count(1) == 0) continue;
    laplacians.push_back(combinatorial_laplacian(complex, 1));
    classical.push_back(static_cast<double>(betti_number(complex, 1)));
  }

  std::printf("%-10s %-10s %-14s %-14s\n", "precision", "shots",
              "mean |error|", "max |error|");
  for (const std::size_t t : {1u, 3u, 5u, 8u}) {
    for (const std::size_t shots : {100u, 10000u, 1000000u}) {
      std::vector<double> errors;
      for (std::size_t i = 0; i < laplacians.size(); ++i) {
        EstimatorOptions options;
        options.precision_qubits = t;
        options.shots = shots;
        options.seed = seed + i * 31 + t * 7 + shots;
        const auto estimate =
            estimate_betti_from_laplacian(laplacians[i], options);
        errors.push_back(
            std::abs(estimate.estimated_betti - classical[i]));
      }
      const auto summary = five_number_summary(errors);
      std::printf("%-10zu %-10zu %-14.3f %-14.3f\n", t, shots, mean(errors),
                  summary.max);
    }
  }
  std::printf("\nError falls along both axes and reaches ~0 at high "
              "precision + shots (paper Fig. 3's message).\n");
  return 0;
}
