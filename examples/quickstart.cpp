/// \file quickstart.cpp
/// \brief The paper's Appendix A, end to end, with every intermediate
/// printed: the simplicial complex (Eq. 13), boundary operators (Eq. 14–15),
/// combinatorial Laplacian (Eq. 17), padded operator (Eq. 18), Pauli
/// decomposition (Eq. 19), and the QPE-based Betti estimate (3 precision
/// qubits, 1000 shots → β̃1 = 1).
///
/// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/betti_estimator.hpp"
#include "core/padding.hpp"
#include "core/scaling.hpp"
#include "quantum/pauli.hpp"
#include "topology/betti.hpp"
#include "topology/boundary.hpp"
#include "topology/laplacian.hpp"

namespace {

using namespace qtda;

void print_matrix(const char* title, const RealMatrix& m) {
  std::printf("%s (%zux%zu):\n", title, m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    std::printf("  [");
    for (std::size_t j = 0; j < m.cols(); ++j)
      std::printf(" %5.1f", m(i, j));
    std::printf(" ]\n");
  }
}

}  // namespace

int main() {
  std::printf("QTDA quickstart — the paper's worked example (Appendix A)\n");
  std::printf("==========================================================\n\n");

  // Step 1: the simplicial complex K of Eq. (13).  We insert the maximal
  // simplices; the library adds all faces.
  const auto complex = SimplicialComplex::from_simplices(
      {Simplex{1, 2, 3}, Simplex{3, 4}, Simplex{3, 5}, Simplex{4, 5}},
      /*close_downward=*/true);
  std::printf("Complex K: %zu vertices, %zu edges, %zu triangles\n",
              complex.count(0), complex.count(1), complex.count(2));
  std::printf("Edges (column order of Eq. 14):");
  for (const auto& e : complex.simplices(1))
    std::printf(" %s", e.to_string().c_str());
  std::printf("\n\n");

  // Step 2: boundary operators and the combinatorial Laplacian.
  print_matrix("boundary operator d1 (standard orientation; Eq. 14 is its "
               "global negation)",
               boundary_operator(complex, 1).to_dense());
  print_matrix("boundary operator d2 (Eq. 15)",
               boundary_operator(complex, 2).to_dense());
  const auto laplacian = combinatorial_laplacian(complex, 1);
  print_matrix("combinatorial Laplacian Delta_1 (Eq. 17)", laplacian);

  std::printf("\nClassical Betti numbers: beta_0 = %zu, beta_1 = %zu\n\n",
              betti_number(complex, 0), betti_number(complex, 1));

  // Step 3: pad to 8x8 with (lambda_max/2)*I (Eq. 18) and rescale with
  // delta = lambda_max = 6 so H equals the padded Laplacian.
  const auto padded = pad_laplacian(laplacian);
  std::printf("Gershgorin bound lambda_max = %.1f; padding 6 -> 8 "
              "(q = %zu system qubits)\n",
              padded.lambda_max, padded.num_qubits);
  print_matrix("padded Laplacian (Eq. 18)", padded.matrix);
  const auto scaled = rescale_laplacian(padded, /*delta=*/6.0);

  // Step 4: Pauli decomposition (Eq. 19) — 24 terms.
  const auto hamiltonian = pauli_decompose(scaled.matrix).sorted();
  std::printf("\nPauli decomposition of H (Eq. 19), %zu terms:\n",
              hamiltonian.size());
  for (const auto& term : hamiltonian.terms())
    std::printf("  %+7.3f * %s\n", term.coefficient,
                term.string.to_string().c_str());

  // Step 5: the quantum estimate.  Full circuit (Fig. 6): 3 precision
  // qubits + 3 system qubits + 3 purification ancillas, 1000 shots.
  EstimatorOptions options;
  options.backend = EstimatorBackend::kCircuitExact;
  options.precision_qubits = 3;
  options.shots = 1000;
  options.delta = 6.0;
  options.seed = 2023;
  const auto estimate = estimate_betti(complex, 1, options);
  std::printf("\nQPE run: %zu total qubits, %zu gates, depth %zu\n",
              estimate.total_qubits, estimate.circuit_gates,
              estimate.circuit_depth);
  std::printf("p(0) measured = %.3f (exact %.3f; paper measured 0.149)\n",
              estimate.zero_probability, estimate.exact_zero_probability);
  std::printf("Betti estimate: 2^q * p(0) = %.3f  ->  rounds to %zu "
              "(paper: 1.192 -> 1)\n",
              estimate.estimated_betti, estimate.rounded_betti);
  std::printf("\nDone: the quantum estimate matches the classical "
              "beta_1 = %zu.\n",
              betti_number(complex, 1));
  return 0;
}
