#!/usr/bin/env python3
"""qtda project lint: repo-specific invariants no generic tool checks.

Wired into CI and scripts/verify.sh, and registered in ctest via
--self-test (which first proves every fixture under tests/lint_fixtures/
fails its rule, then requires the real tree to be clean).

Rules
-----
determinism
    No std::random_device, srand/std::rand, or time()-based seeding outside
    src/common/random.*.  Every random stream must derive from qtda::Rng so
    any run is reproducible from a single seed — the property behind the
    golden-fingerprint bit-identity suite and the batched-serving contract.

stdout
    No std::cout / std::cerr / printf-family writes to the standard streams
    in library code (src/**).  Output routes through common/logging (which
    owns the stderr sink) or telemetry; snprintf into buffers is fine.

complex-scalar
    No hard-coded std::complex<double> in the scalar-templated simulation
    spine (statevector, sharded_statevector, density_matrix, executor,
    backend, mixed_state, compiler).  The amplitude scalar is a template
    parameter there; a literal complex128 silently pins one precision and
    breaks the float32 engines.  Genuine double-boundary sites (widening
    accumulators, the ComplexMatrix casting rails) carry waivers.

bare-mutex
    No bare std::mutex / std::condition_variable (or their recursive/
    shared/timed cousins) in library code outside
    common/thread_annotations.hpp.  Locking goes through the
    capability-annotated qtda::Mutex / MutexLock / CondVar wrappers so the
    clang -Wthread-safety CI leg can prove the lock discipline; a bare
    std::mutex is invisible to that analysis.

pragma-once
    Every header under src/ opens with #pragma once as its first directive.

include-path
    Project includes are module-qualified double quotes ("common/x.hpp"),
    never "../" or "./" traversal — headers must be locatable from the one
    -Isrc root the build and the self-containment sweep use.

Waivers
-------
A finding is suppressed by a comment `qtda-lint: allow(<rule>)` either on
the offending line or as a standalone comment line, in which case it covers
the lines up to the next blank line (one function/block).  Waivers are for
sites where the pattern is the correct behavior; say why in the comment.
"""

import argparse
import os
import re
import sys

LIB_EXTENSIONS = (".hpp", ".cpp")

# (rule, regex, message)
DETERMINISM_PATTERNS = [
    ("determinism", re.compile(r"\brandom_device\b"),
     "std::random_device is non-deterministic; seed a qtda::Rng instead"),
    ("determinism", re.compile(r"(?<![\w:])s?rand\s*\("),
     "rand/srand is non-deterministic global state; use qtda::Rng"),
    ("determinism", re.compile(r"(?<![\w])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "wall-clock seeding breaks run-to-run reproducibility; use qtda::Rng"),
]

STDOUT_PATTERNS = [
    ("stdout", re.compile(r"\bstd::cout\b"),
     "library code must not write to stdout; route through common/logging"),
    ("stdout", re.compile(r"\bstd::cerr\b"),
     "library code must not write to stderr directly; use QTDA_LOG levels"),
    ("stdout", re.compile(r"(?<![\w])printf\s*\("),
     "printf writes to stdout; route through common/logging"),
    ("stdout", re.compile(r"\bf?puts\s*\("),
     "puts/fputs on standard streams; route through common/logging"),
    ("stdout", re.compile(r"\bfprintf\s*\(\s*stdout"),
     "fprintf(stdout, ...) in library code; route through common/logging"),
    ("stdout", re.compile(r"\bfprintf\s*\(\s*stderr"),
     "fprintf(stderr, ...) belongs to common/logging's sink only"),
]

BARE_MUTEX_PATTERNS = [
    ("bare-mutex", re.compile(
        r"\bstd::(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b"),
     "bare std::mutex is invisible to -Wthread-safety; use qtda::Mutex "
     "from common/thread_annotations.hpp"),
    ("bare-mutex", re.compile(r"\bstd::condition_variable(?:_any)?\b"),
     "bare std::condition_variable bypasses the annotated wrappers; use "
     "qtda::CondVar from common/thread_annotations.hpp"),
]

# The one file allowed to name the raw primitives (it wraps them).
BARE_MUTEX_EXEMPT = {"src/common/thread_annotations.hpp"}

COMPLEX_SCALAR_PATTERN = (
    "complex-scalar", re.compile(r"std::complex<double>"),
    "scalar-templated spine: use the Scalar/Real template parameter "
    "(or waive a genuine double-boundary site)")

# Files whose amplitude scalar is a template parameter.  Paths relative to
# the repo root, forward slashes.
COMPLEX_SCALAR_FILES = {
    "src/quantum/statevector.hpp", "src/quantum/statevector.cpp",
    "src/quantum/sharded_statevector.hpp", "src/quantum/sharded_statevector.cpp",
    "src/quantum/density_matrix.hpp", "src/quantum/density_matrix.cpp",
    "src/quantum/executor.hpp", "src/quantum/executor.cpp",
    "src/quantum/backend.hpp", "src/quantum/backend.cpp",
    "src/quantum/mixed_state.hpp", "src/quantum/mixed_state.cpp",
    "src/quantum/compiler.hpp", "src/quantum/compiler.cpp",
}

# The one file allowed to touch the process streams (it owns the stderr
# sink every QTDA_LOG line flows through).
STDOUT_EXEMPT = {"src/common/logging.cpp"}

# The one module allowed to name entropy primitives (it wraps them — today
# it doesn't even do that, but the exemption documents where such code
# would belong).
DETERMINISM_EXEMPT_PREFIX = "src/common/random"

WAIVER_RE = re.compile(r"qtda-lint:\s*allow\(([a-z0-9_,\- ]+)\)")
COMMENT_ONLY_RE = re.compile(r"^\s*(//|/\*|\*)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def waived_rules(lines):
    """Maps 1-based line number -> set of waived rule names."""
    waived = {}
    for i, line in enumerate(lines, start=1):
        match = WAIVER_RE.search(line)
        if not match:
            continue
        rules = {r.strip() for r in match.group(1).split(",")}
        if COMMENT_ONLY_RE.match(line):
            # Standalone waiver comment: covers until the next blank line.
            j = i + 1
            while j <= len(lines) and lines[j - 1].strip() != "":
                waived.setdefault(j, set()).update(rules)
                j += 1
        else:
            waived.setdefault(i, set()).update(rules)
    return waived


def strip_comments_outside_strings(line):
    """Drops // comments and blanks string-literal interiors so neither
    commented-out code nor log text trips the rules.  (Block comments are
    handled coarsely: a line starting inside one is the caller's problem;
    every rule here targets single-line constructs.)"""
    out = []
    in_string = None
    i = 0
    while i < len(line):
        c = line[i]
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
                out.append(c)
            i += 1
            continue
        if c in ('"', "'"):
            in_string = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < len(line) and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(rel_path, text):
    findings = []
    lines = text.splitlines()
    waived = waived_rules(lines)

    patterns = []
    if not rel_path.startswith(DETERMINISM_EXEMPT_PREFIX):
        patterns += DETERMINISM_PATTERNS
    if rel_path not in STDOUT_EXEMPT:
        patterns += STDOUT_PATTERNS
    if rel_path.replace(os.sep, "/") not in BARE_MUTEX_EXEMPT:
        patterns += BARE_MUTEX_PATTERNS
    if rel_path.replace(os.sep, "/") in COMPLEX_SCALAR_FILES:
        patterns.append(COMPLEX_SCALAR_PATTERN)

    for i, raw in enumerate(lines, start=1):
        code = strip_comments_outside_strings(raw)
        for rule, regex, message in patterns:
            if regex.search(code) and rule not in waived.get(i, set()):
                findings.append(Finding(rel_path, i, rule, message))

    if rel_path.endswith(".hpp"):
        findings += lint_header_conventions(rel_path, lines, waived)
    findings += lint_includes(rel_path, lines, waived)
    return findings


def lint_header_conventions(rel_path, lines, waived):
    findings = []
    in_block_comment = False
    for i, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if stripped == "" or stripped.startswith("//"):
            continue
        if stripped.startswith("/*"):
            if "*/" not in stripped:
                in_block_comment = True
            continue
        if stripped != "#pragma once" and "pragma-once" not in waived.get(i, set()):
            findings.append(Finding(
                rel_path, i, "pragma-once",
                "headers must open with #pragma once before any other code"))
        break
    return findings


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def lint_includes(rel_path, lines, waived):
    findings = []
    for i, raw in enumerate(lines, start=1):
        match = INCLUDE_RE.match(raw)
        if not match or "include-path" in waived.get(i, set()):
            continue
        target = match.group(1)
        if target.startswith("../") or target.startswith("./"):
            findings.append(Finding(
                rel_path, i, "include-path",
                f'"{target}": no relative traversal; include module-qualified '
                'paths from the src/ root'))
        elif "/" not in target:
            findings.append(Finding(
                rel_path, i, "include-path",
                f'"{target}": project includes must be module-qualified '
                '(e.g. "common/error.hpp")'))
    return findings


def iter_library_files(root):
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith(LIB_EXTENSIONS):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root).replace(os.sep, "/"), full


def lint_tree(root):
    findings = []
    for rel_path, full in iter_library_files(root):
        with open(full, encoding="utf-8") as handle:
            findings += lint_file(rel_path, handle.read())
    return findings


def self_test(root):
    """Every fixture must fail exactly its named rule; the tree must pass."""
    fixtures = os.path.join(root, "tests", "lint_fixtures")
    failures = []
    seen_rules = set()
    for name in sorted(os.listdir(fixtures)):
        if not name.endswith(LIB_EXTENSIONS):
            continue
        # bad_<rule-with-underscores>.<ext> must trip <rule>; clean_* must not.
        full = os.path.join(fixtures, name)
        with open(full, encoding="utf-8") as handle:
            text = handle.read()
        # Fixtures emulate library files: lint them as if they lived in the
        # spine so every rule (including complex-scalar) is in scope, with
        # the fixture's own extension so the header rules apply to .hpp.
        ext = name.rsplit(".", 1)[1]
        findings = lint_file(f"src/quantum/statevector.{ext}", text)
        rules_hit = {f.rule for f in findings}
        if name.startswith("bad_"):
            expected = name[len("bad_"):].rsplit(".", 1)[0].replace("_", "-")
            seen_rules.add(expected)
            if expected not in rules_hit:
                failures.append(
                    f"fixture {name}: expected a [{expected}] finding, got "
                    f"{sorted(rules_hit) or 'none'}")
        elif name.startswith("clean_"):
            if rules_hit:
                failures.append(
                    f"fixture {name}: expected no findings, got "
                    f"{sorted(rules_hit)}")
    if not seen_rules:
        failures.append(f"no bad_* fixtures found under {fixtures}")

    tree_findings = lint_tree(root)
    for finding in tree_findings:
        failures.append(f"tree not clean: {finding}")

    for failure in failures:
        print(f"lint self-test: {failure}", file=sys.stderr)
    if not failures:
        print(f"lint self-test: {len(seen_rules)} rules exercised by "
              f"fixtures; tree clean")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the checkout containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run fixture expectations plus a clean-tree check")
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (default: all of src/)")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root)

    if args.paths:
        findings = []
        for path in args.paths:
            rel = os.path.relpath(os.path.abspath(path), args.root)
            rel = rel.replace(os.sep, "/")
            with open(path, encoding="utf-8") as handle:
                findings += lint_file(rel, handle.read())
    else:
        findings = lint_tree(args.root)

    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
