#!/usr/bin/env sh
# Runs clang-tidy (config: .clang-tidy at the repo root) over the library
# sources using the compile database the build exports.
#
# Usage: scripts/tidy.sh [build-dir] [file...]
#   build-dir  defaults to build/ (must contain compile_commands.json;
#              every preset configures with CMAKE_EXPORT_COMPILE_COMMANDS)
#   file...    optional subset of sources; defaults to all src/**/*.cpp
set -eu

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "tidy.sh: '$TIDY' not found on PATH." >&2
  echo "tidy.sh: install clang-tidy (apt: clang-tidy) or set CLANG_TIDY." >&2
  exit 2
fi

BUILD_DIR="build"
if [ "$#" -gt 0 ] && [ -d "$1" ]; then
  BUILD_DIR="$1"
  shift
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "tidy.sh: $BUILD_DIR/compile_commands.json missing." >&2
  echo "tidy.sh: configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

if [ "$#" -gt 0 ]; then
  FILES="$*"
else
  FILES=$(find src -name '*.cpp' | sort)
fi

# shellcheck disable=SC2086  # word-splitting FILES is intended
"$TIDY" -p "$BUILD_DIR" --quiet $FILES
echo "tidy.sh: clean"
