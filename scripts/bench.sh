#!/usr/bin/env sh
# Runs every bench_micro_* Google-Benchmark binary with JSON output and
# merges the results into BENCH_micro.json (one top-level key per binary),
# seeding the perf trajectory that future PRs compare against.
#
# Usage: scripts/bench.sh
#   QTDA_BENCH_BUILD_DIR  build directory (default: build-bench; configured
#                         with -DQTDA_BUILD_BENCH=ON if absent)
#   QTDA_BENCH_MIN_TIME   --benchmark_min_time value (default: 0.05)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR=${QTDA_BENCH_BUILD_DIR:-build-bench}
MIN_TIME=${QTDA_BENCH_MIN_TIME:-0.05}
OUT=BENCH_micro.json

if [ ! -d "$BUILD_DIR" ]; then
  cmake -B "$BUILD_DIR" -S . -DQTDA_BUILD_BENCH=ON
fi
cmake --build "$BUILD_DIR" -j

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

found=0
first=1
printf '{\n' > "$OUT"
for bench in "$BUILD_DIR"/bench/bench_micro_*; do
  [ -x "$bench" ] || continue
  found=1
  name=$(basename "$bench")
  echo "running $name ..."
  "$bench" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
    > "$tmp/$name.json"
  [ "$first" -eq 1 ] || printf ',\n' >> "$OUT"
  first=0
  printf '"%s": ' "$name" >> "$OUT"
  cat "$tmp/$name.json" >> "$OUT"
done
printf '\n}\n' >> "$OUT"

if [ "$found" -eq 0 ]; then
  echo "no bench_micro_* binaries found in $BUILD_DIR/bench;" \
       "is Google Benchmark installed?" >&2
  exit 1
fi
echo "wrote $OUT"
