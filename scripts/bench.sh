#!/usr/bin/env sh
# Runs every bench_micro_* Google-Benchmark binary with JSON output and
# merges the results into BENCH_micro.json (one top-level key per binary).
# When a committed BENCH_micro.json already exists, the fresh results are
# diffed against it first and per-benchmark real_time deltas are printed —
# the perf trajectory the ROADMAP asks for.
#
# Usage: scripts/bench.sh [--check]
#   --check               exit non-zero when any benchmark regressed by more
#                         than QTDA_BENCH_TOLERANCE (opt-in so noisy hosts
#                         don't fail by default)
#   QTDA_BENCH_BUILD_DIR  build directory (default: build-bench; configured
#                         with -DQTDA_BUILD_BENCH=ON if absent)
#   QTDA_BENCH_MIN_TIME   --benchmark_min_time value (default: 0.05)
#   QTDA_BENCH_TOLERANCE  regression threshold for --check (default: 0.25,
#                         i.e. fail on >25% slower real_time)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR=${QTDA_BENCH_BUILD_DIR:-build-bench}
MIN_TIME=${QTDA_BENCH_MIN_TIME:-0.05}
TOLERANCE=${QTDA_BENCH_TOLERANCE:-0.25}
OUT=BENCH_micro.json
CHECK=0
[ "${1:-}" = "--check" ] && CHECK=1

if [ ! -d "$BUILD_DIR" ]; then
  cmake -B "$BUILD_DIR" -S . -DQTDA_BUILD_BENCH=ON
fi
cmake --build "$BUILD_DIR" -j

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Keep the committed baseline for the diff before overwriting it.
baseline=""
if [ -f "$OUT" ]; then
  baseline="$tmp/baseline.json"
  cp "$OUT" "$baseline"
fi

found=0
first=1
printf '{\n' > "$OUT"
for bench in "$BUILD_DIR"/bench/bench_micro_*; do
  [ -x "$bench" ] || continue
  found=1
  name=$(basename "$bench")
  echo "running $name ..."
  "$bench" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
    > "$tmp/$name.json"
  [ "$first" -eq 1 ] || printf ',\n' >> "$OUT"
  first=0
  printf '"%s": ' "$name" >> "$OUT"
  cat "$tmp/$name.json" >> "$OUT"
done
printf '\n}\n' >> "$OUT"

if [ "$found" -eq 0 ]; then
  echo "no bench_micro_* binaries found in $BUILD_DIR/bench;" \
       "is Google Benchmark installed?" >&2
  exit 1
fi
echo "wrote $OUT"

# Per-benchmark real_time deltas against the committed baseline.  New or
# vanished benchmarks are reported but never fail the check.
if [ -n "$baseline" ]; then
  python3 - "$baseline" "$OUT" "$TOLERANCE" "$CHECK" <<'PYEOF'
import json, sys

baseline_path, fresh_path, tolerance, check = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), sys.argv[4] == "1")

def flatten(path):
    with open(path) as f:
        merged = json.load(f)
    times = {}
    for binary, report in merged.items():
        for bench in report.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            times[f"{binary}:{bench['name']}"] = float(bench["real_time"])
    return times

old, new = flatten(baseline_path), flatten(fresh_path)
regressions = []
print(f"\nperf trajectory vs committed baseline (tolerance {tolerance:.0%}):")
for name in sorted(new):
    if name not in old:
        print(f"  {name:70s}  NEW")
        continue
    delta = new[name] / old[name] - 1.0 if old[name] > 0 else 0.0
    marker = ""
    if delta > tolerance:
        marker = "  << REGRESSION"
        regressions.append((name, delta))
    print(f"  {name:70s}  {delta:+7.1%}{marker}")
for name in sorted(set(old) - set(new)):
    print(f"  {name:70s}  REMOVED")

if regressions:
    print(f"\n{len(regressions)} benchmark(s) slower by more than "
          f"{tolerance:.0%}:")
    for name, delta in regressions:
        print(f"  {name}: {delta:+.1%}")
    if check:
        sys.exit(1)
    print("(informational; re-run with --check to fail on regressions)")
PYEOF
fi
