#!/usr/bin/env sh
# Tier-1 verify, exactly as ROADMAP.md specifies it, from a clean tree,
# preceded by the project lint (fast, catches invariant drift before the
# ~minutes-long build).
# Usage: scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."
python3 scripts/lint.py --self-test
rm -rf build
cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
