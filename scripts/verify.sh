#!/usr/bin/env sh
# Tier-1 verify, exactly as ROADMAP.md specifies it, from a clean tree.
# Usage: scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."
rm -rf build
cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
